"""Modified nodal analysis (MNA) assembly and the Newton-Raphson engine.

The unknown vector is ``x = [node voltages..., branch currents...]`` where
branch currents exist for voltage sources and inductors.  Nonlinear devices
(MOSFETs, diodes, switches) are linearised around the present guess and the
system is iterated to convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.analog.devices import Device
from repro.analog.netlist import Circuit, is_ground


class ConvergenceError(RuntimeError):
    """Raised when Newton-Raphson fails to converge."""


@dataclass
class NewtonStats:
    """Optional diagnostics filled in by :func:`newton_solve`.

    The adaptive transient controller uses ``iterations`` as its
    convergence-speed signal (few iterations → the time step can grow).
    """

    #: Newton iterations of the final (successful) solve.
    iterations: int = 0
    #: True when the plain solve failed and gmin stepping was required.
    used_gmin_stepping: bool = False


@dataclass
class SolverOptions:
    """Tunable knobs of the nonlinear solver."""

    max_iterations: int = 150
    #: Absolute node-voltage convergence tolerance (volts).
    voltage_tolerance: float = 1e-6
    #: Relative convergence tolerance.
    relative_tolerance: float = 1e-6
    #: Maximum per-iteration change applied to any node voltage (damping).
    max_voltage_step: float = 0.3
    #: Diagonal conductance added to every node row for conditioning.
    gmin: float = 1e-12
    #: Sequence of gmin values tried when the plain solve does not converge.
    gmin_stepping: tuple = (1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 1e-12)


class MNASystem:
    """Index bookkeeping and matrix assembly for one circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.node_names = circuit.nodes()
        self.node_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)
        }
        self.n_nodes = len(self.node_names)
        self.branch_owner: Dict[str, int] = {}
        branch = 0
        for device in circuit.devices:
            if device.n_branches:
                self.branch_owner[device.name] = branch
                branch += device.n_branches
        self.n_branches = branch
        self.size = self.n_nodes + self.n_branches
        if self.size == 0:
            raise ValueError(f"circuit {circuit.name!r} has no unknowns to solve for")
        #: Cached once: whether any device needs Newton iteration at all.
        self.is_nonlinear = any(device.is_nonlinear for device in circuit.devices)
        # Reusable assembly workspace.  The matrix structure (size and the
        # set of touched entries) is fixed by the circuit topology, so the
        # dense matrix and RHS are allocated once and zeroed per assembly
        # instead of reallocated per Newton iteration.
        self._matrix = np.zeros((self.size, self.size))
        self._rhs = np.zeros(self.size)
        # Flat indices of the node-row diagonal, for vectorised gmin loading.
        self._node_diag_flat = np.arange(self.n_nodes) * (self.size + 1)

    # ------------------------------------------------------------------ lookup
    def index_of(self, node: str) -> int:
        """Matrix index of a node (-1 for ground)."""
        if is_ground(node):
            return -1
        return self.node_index[node]

    def branch_index_of(self, device: Device) -> int:
        """Matrix index of a device's branch current."""
        return self.n_nodes + self.branch_owner[device.name]

    def voltage_of(self, solution: np.ndarray, node: str) -> float:
        """Voltage of ``node`` in a solution vector (0.0 for ground)."""
        idx = self.index_of(node)
        return 0.0 if idx < 0 else float(solution[idx])

    def branch_current_of(self, solution: np.ndarray, device: Device) -> float:
        """Branch current of ``device`` in a solution vector."""
        return float(solution[self.branch_index_of(device)])

    def solution_as_dict(self, solution: np.ndarray) -> Dict[str, float]:
        """Node-voltage mapping for a solution vector."""
        return {name: float(solution[i]) for name, i in self.node_index.items()}

    # ---------------------------------------------------------------- assembly
    def assemble(self, state: "StampState", options: SolverOptions) -> tuple:
        """Assemble the (linearised) MNA matrix and right-hand side.

        The returned arrays are the system's reusable workspace: they are
        overwritten by the next :meth:`assemble` call, so callers must not
        hold on to them across iterations (``np.linalg.solve`` copies).
        """
        self._matrix.fill(0.0)
        self._rhs.fill(0.0)
        stamper = Stamper(self, matrix=self._matrix, rhs=self._rhs)
        for device in self.circuit.devices:
            device.stamp(stamper, state)
        matrix, rhs = stamper.matrix, stamper.rhs
        # Conditioning gmin on node rows only.
        matrix.flat[self._node_diag_flat] += state.gmin if state.gmin else options.gmin
        return matrix, rhs

    # ----------------------------------------------------------------- solving
    def solve_assembled(
        self, matrix: np.ndarray, rhs: np.ndarray, *, iteration: int = 0
    ) -> np.ndarray:
        """Solve one assembled linear system.

        The base implementation is a plain dense solve with a least-squares
        fallback for singular matrices.  :class:`repro.analog.compiled.\
CompiledCircuit` overrides this with LU caching (linear circuits) and the
        frozen-Jacobian fast path (``iteration`` tells it whether this is the
        first solve of a Newton run).
        """
        try:
            return np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError:
            return np.linalg.lstsq(matrix, rhs, rcond=None)[0]


def seed_solution_vector(
    system: MNASystem,
    voltages: Optional[Dict[str, float]],
    vector: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Write named node voltages into a solution-sized vector.

    Ground aliases are skipped; unknown node names raise ``KeyError`` (same
    contract as :meth:`MNASystem.index_of`).  Used by every analysis that
    seeds an initial guess or initial condition from a name→voltage mapping.
    """
    if vector is None:
        vector = np.zeros(system.size)
    if voltages:
        for node, value in voltages.items():
            idx = system.index_of(node)
            if idx >= 0:
                vector[idx] = value
    return vector


@dataclass
class StampState:
    """Context passed to every device while stamping.

    Attributes
    ----------
    system:
        The owning :class:`MNASystem` (used to resolve node names).
    analysis:
        ``"dc"`` or ``"transient"``.
    time:
        Simulation time of the step being solved (seconds).
    dt:
        Time step (seconds); meaningless for DC.
    guess:
        Present Newton iterate (node voltages + branch currents).
    previous:
        Converged solution of the previous time point (transient only).
    gmin:
        Optional override of the conditioning conductance (gmin stepping).
    """

    system: MNASystem
    analysis: str = "dc"
    time: float = 0.0
    dt: float = 1e-9
    guess: np.ndarray = field(default_factory=lambda: np.zeros(0))
    previous: Optional[np.ndarray] = None
    gmin: float = 0.0

    def guess_voltage(self, node: str) -> float:
        """Node voltage in the present Newton iterate."""
        idx = self.system.index_of(node)
        if idx < 0 or idx >= len(self.guess):
            return 0.0
        return float(self.guess[idx])

    def previous_voltage(self, node: str) -> float:
        """Node voltage at the previous time point (0.0 if unavailable)."""
        if self.previous is None:
            return 0.0
        idx = self.system.index_of(node)
        if idx < 0 or idx >= len(self.previous):
            return 0.0
        return float(self.previous[idx])

    def previous_branch_current(self, device: Device) -> float:
        """Branch current at the previous time point (0.0 if unavailable)."""
        if self.previous is None:
            return 0.0
        return float(self.previous[self.system.branch_index_of(device)])


class Stamper:
    """Accumulates device stamps into the dense MNA matrix."""

    def __init__(
        self,
        system: MNASystem,
        matrix: Optional[np.ndarray] = None,
        rhs: Optional[np.ndarray] = None,
    ) -> None:
        self.system = system
        self.matrix = (
            matrix if matrix is not None else np.zeros((system.size, system.size))
        )
        self.rhs = rhs if rhs is not None else np.zeros(system.size)

    # ---------------------------------------------------------------- resolves
    def _idx(self, node: str) -> int:
        return self.system.index_of(node)

    def branch_index(self, device: Device) -> int:
        """Matrix index of a device's branch-current unknown."""
        return self.system.branch_index_of(device)

    # ------------------------------------------------------------------ stamps
    def add_matrix(self, row_node: str, col_node: str, value: float) -> None:
        """Add ``value`` at (row, col) addressed by node names (ground skipped)."""
        i, j = self._idx(row_node), self._idx(col_node)
        if i >= 0 and j >= 0:
            self.matrix[i, j] += value

    def add_matrix_branch(self, row: int, col: int, value: float) -> None:
        """Add ``value`` at explicit matrix indices (used for branch rows)."""
        self.matrix[row, col] += value

    def add_rhs_branch(self, row: int, value: float) -> None:
        """Add ``value`` to the right-hand side at an explicit index."""
        self.rhs[row] += value

    def stamp_conductance(self, node_a: str, node_b: str, conductance: float) -> None:
        """Stamp a two-terminal conductance between ``node_a`` and ``node_b``."""
        a, b = self._idx(node_a), self._idx(node_b)
        if a >= 0:
            self.matrix[a, a] += conductance
        if b >= 0:
            self.matrix[b, b] += conductance
        if a >= 0 and b >= 0:
            self.matrix[a, b] -= conductance
            self.matrix[b, a] -= conductance

    def stamp_transconductance(
        self, out_a: str, out_b: str, ctrl_pos: str, ctrl_neg: str, gm: float
    ) -> None:
        """Stamp a current ``gm * (v_ctrl_pos - v_ctrl_neg)`` from ``out_a`` to ``out_b``."""
        a, b = self._idx(out_a), self._idx(out_b)
        cp, cn = self._idx(ctrl_pos), self._idx(ctrl_neg)
        for out_idx, sign in ((a, 1.0), (b, -1.0)):
            if out_idx < 0:
                continue
            if cp >= 0:
                self.matrix[out_idx, cp] += sign * gm
            if cn >= 0:
                self.matrix[out_idx, cn] -= sign * gm

    def stamp_current_injection(self, node: str, value: float) -> None:
        """Inject ``value`` amperes into ``node`` (adds to the RHS)."""
        idx = self._idx(node)
        if idx >= 0:
            self.rhs[idx] += value

    def stamp_branch_voltage(self, node_pos: str, node_neg: str, branch: int) -> None:
        """Stamp the incidence entries of a branch defined by a voltage constraint."""
        pos, neg = self._idx(node_pos), self._idx(node_neg)
        if pos >= 0:
            self.matrix[pos, branch] += 1.0
            self.matrix[branch, pos] += 1.0
        if neg >= 0:
            self.matrix[neg, branch] -= 1.0
            self.matrix[branch, neg] -= 1.0


def newton_solve(
    system: MNASystem,
    state: StampState,
    initial_guess: Optional[np.ndarray] = None,
    options: Optional[SolverOptions] = None,
    *,
    stats: Optional[NewtonStats] = None,
) -> np.ndarray:
    """Solve the (possibly nonlinear) MNA system by damped Newton-Raphson.

    Falls back to gmin stepping if the plain iteration does not converge.
    Pass a :class:`NewtonStats` to receive convergence diagnostics.
    """
    options = options or SolverOptions()
    guess = (
        np.zeros(system.size) if initial_guess is None else np.array(initial_guess, dtype=float)
    )
    try:
        return _newton_iterate(system, state, guess, options, gmin=0.0, stats=stats)
    except (ConvergenceError, np.linalg.LinAlgError):
        pass
    # gmin stepping: solve with a heavily damped system first, then relax.
    if stats is not None:
        stats.used_gmin_stepping = True
    solution = guess
    for gmin in options.gmin_stepping:
        solution = _newton_iterate(system, state, solution, options, gmin=gmin, stats=stats)
    return solution


def _newton_iterate(
    system: MNASystem,
    state: StampState,
    guess: np.ndarray,
    options: SolverOptions,
    *,
    gmin: float,
    stats: Optional[NewtonStats] = None,
) -> np.ndarray:
    nonlinear = system.is_nonlinear
    x = guess.copy()
    state.gmin = gmin
    for iteration in range(options.max_iterations):
        state.guess = x
        matrix, rhs = system.assemble(state, options)
        x_new = system.solve_assembled(matrix, rhs, iteration=iteration)
        if not nonlinear:
            if stats is not None:
                stats.iterations = iteration + 1
            return x_new
        delta = x_new - x
        node_delta = delta[: system.n_nodes]
        # Progressive damping: if the iteration has not settled after a third
        # of the budget (typically a regenerative feedback loop bouncing
        # between two states), shrink the accepted step to force convergence.
        step_limit = options.max_voltage_step
        if iteration >= options.max_iterations // 3:
            step_limit *= 0.25
        elif iteration >= options.max_iterations // 6:
            step_limit *= 0.5
        if len(node_delta):
            np.clip(node_delta, -step_limit, step_limit, out=node_delta)
        x = x + delta
        max_delta = float(np.max(np.abs(node_delta))) if len(node_delta) else 0.0
        scale = float(np.max(np.abs(x[: system.n_nodes]))) if system.n_nodes else 1.0
        if max_delta <= options.voltage_tolerance + options.relative_tolerance * max(scale, 1.0):
            if stats is not None:
                stats.iterations = iteration + 1
            return x
    raise ConvergenceError(
        f"Newton-Raphson failed to converge for circuit {system.circuit.name!r} "
        f"(analysis={state.analysis}, t={state.time:g}s, gmin={gmin:g})"
    )
