"""Import blocker simulating a SciPy-free install.

Prepend this directory to ``PYTHONPATH`` (before ``src``) and every
``import scipy`` — including ``from scipy.sparse import ...`` — raises
``ImportError``, exactly as on a machine without SciPy.  CI uses it to run
the analog engine test subset against the degradation paths: the dense
compiled engine must fall back from raw LAPACK to ``numpy.linalg`` and the
sparse tier must degrade to the dense engine with a single warning
(``repro.analog.sparse.try_sparse_system``), never crash.

Usage::

    PYTHONPATH=tools/noscipy:src python -m pytest tests/test_analog_*.py \
        tests/test_sparse_engine.py -q
"""

raise ImportError(
    "scipy is blocked by tools/noscipy to simulate a SciPy-free install"
)
