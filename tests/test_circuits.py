"""Tests for the circuit library (paper Figs. 2, 5a, 9b, 10a).

These tests exercise the MNA netlists; transient runs use short durations so
the whole module stays fast.
"""

import numpy as np
import pytest

from repro.circuits import (
    AxonHillockDesign,
    CurrentDriverDesign,
    IFNeuronDesign,
    InverterSizing,
    amplitude_vs_vdd,
    build_current_driver,
    build_inverter,
    output_current,
    switching_threshold,
    threshold_vs_vdd,
    trip_point,
)
from repro.circuits import robust_driver as robust
from repro.circuits.axon_hillock import simulate_axon_hillock
from repro.circuits.bandgap import BandgapReferenceModel, diode_reference_voltage
from repro.circuits.if_neuron import build_if_neuron
from repro.circuits.ota import build_ota_testbench
from repro.analog import dc_sweep


class TestInverter:
    def test_nominal_threshold_near_half_vdd(self):
        threshold = switching_threshold(1.0)
        assert threshold == pytest.approx(0.5, abs=0.02)

    def test_threshold_tracks_vdd(self):
        thresholds = threshold_vs_vdd([0.8, 1.0, 1.2])
        changes = (thresholds - thresholds[1]) / thresholds[1]
        # Paper Fig. 6a: roughly -18 % at 0.8 V and +17 % at 1.2 V.
        assert -0.22 < changes[0] < -0.12
        assert 0.12 < changes[2] < 0.22

    def test_sizing_shifts_threshold(self):
        weak_pulldown = switching_threshold(1.0, sizing=InverterSizing(nmos_width=200e-9))
        strong_pulldown = switching_threshold(1.0, sizing=InverterSizing(nmos_width=2e-6))
        assert weak_pulldown > strong_pulldown

    def test_inverter_sizing_helpers(self):
        sizing = InverterSizing()
        assert sizing.scaled_nmos(2.0).nmos_width == pytest.approx(2 * sizing.nmos_width)
        assert sizing.scaled_pmos(3.0).pmos_width == pytest.approx(3 * sizing.pmos_width)

    def test_build_inverter_has_expected_devices(self):
        circuit = build_inverter()
        assert "INV.MP" in circuit and "INV.MN" in circuit


class TestCurrentDriver:
    def test_nominal_amplitude_near_200na(self):
        assert output_current(1.0) == pytest.approx(200e-9, rel=0.05)

    def test_amplitude_superlinear_in_vdd(self):
        amplitudes = amplitude_vs_vdd([0.8, 1.0, 1.2])
        low_change = (amplitudes[0] - amplitudes[1]) / amplitudes[1]
        high_change = (amplitudes[2] - amplitudes[1]) / amplitudes[1]
        # Paper Fig. 5b: -32 % and +32 % for a +/-20 % VDD change.
        assert -0.40 < low_change < -0.25
        assert 0.25 < high_change < 0.40

    def test_switch_gates_the_output(self):
        closed = build_current_driver(1.0, ctrl_source=1.0)
        opened = build_current_driver(1.0, ctrl_source=0.0)
        from repro.analog import dc_operating_point

        i_on = abs(dc_operating_point(closed).current("VLOAD"))
        i_off = abs(dc_operating_point(opened).current("VLOAD"))
        assert i_on > 50 * max(i_off, 1e-12)

    def test_design_validation(self):
        with pytest.raises(ValueError):
            CurrentDriverDesign(reference_resistance=-1.0)


class TestRobustDriver:
    def test_output_flat_across_vdd(self):
        amplitudes = robust.amplitude_vs_vdd([0.8, 1.0, 1.2])
        spread = (amplitudes.max() - amplitudes.min()) / amplitudes.mean()
        assert spread < 0.02

    def test_output_matches_vref_over_r(self):
        design = robust.RobustDriverDesign()
        measured = robust.output_current(1.0, design=design)
        assert measured == pytest.approx(design.nominal_current, rel=0.1)


class TestOTAAndComparator:
    def test_ota_output_follows_input_comparison(self):
        circuit = build_ota_testbench(1.0, v_minus=0.5)
        sweep = dc_sweep(circuit, "VINP", np.linspace(0.3, 0.7, 9))
        vout = sweep.voltage("out")
        assert vout[0] < 0.1 and vout[-1] > 0.9

    def test_comparator_trip_point_tracks_reference_not_vdd(self):
        trips = [trip_point(v) for v in (0.9, 1.0, 1.1)]
        assert np.ptp(trips) < 0.02
        assert trips[1] == pytest.approx(0.6, abs=0.05)


class TestBandgap:
    def test_diode_reference_weakly_depends_on_vdd(self):
        low = diode_reference_voltage(0.8)
        high = diode_reference_voltage(1.2)
        assert abs(high - low) / low < 0.06

    def test_behavioural_model_sensitivity(self):
        model = BandgapReferenceModel(nominal_output=0.5)
        assert model.output(1.0) == pytest.approx(0.5)
        assert abs(model.output(0.8) / 0.5 - 1.0) <= 0.006
        assert model.output(0.3) < 0.3  # dropout region collapses with supply

    def test_behavioural_model_validation(self):
        with pytest.raises(ValueError):
            BandgapReferenceModel(fractional_sensitivity=1.5)


class TestNeuronCircuits:
    def test_axon_hillock_fires_and_resets(self):
        # Smaller membrane capacitor keeps the transient short for CI.
        design = AxonHillockDesign(
            membrane_capacitance=0.1e-12, feedback_capacitance=0.1e-12
        )
        result = simulate_axon_hillock(design, stop_time="3u", time_step="5n")
        vout = result.waveform("vout")
        assert vout.spike_count(0.5, min_separation=100e-9) >= 1
        assert result.waveform("vmem").maximum() > 0.4

    def test_if_neuron_threshold_divider_follows_vdd(self):
        design = IFNeuronDesign()
        assert design.nominal_threshold == pytest.approx(0.5)
        assert design.with_vdd(0.8).nominal_threshold == pytest.approx(0.4)

    def test_if_neuron_circuit_contains_comparator_and_reset(self):
        circuit = build_if_neuron()
        for name in ("CMP.M_TAIL", "MN1", "MN4", "CK", "CMEM"):
            assert name in circuit

    def test_if_neuron_external_threshold_defense_wiring(self):
        circuit = build_if_neuron(external_threshold=0.5)
        assert "VTHR" in circuit
        assert "RTHR_TOP" not in circuit
