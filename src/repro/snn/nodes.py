"""Node (neuron-layer) groups for the NumPy SNN framework.

All node groups keep their state in per-neuron NumPy arrays.  Two details
matter for the fault-injection experiments:

* ``thresh`` is a **per-neuron** array derived from ``base_thresh`` and a
  per-neuron ``threshold_scale`` — Attacks 2-5 corrupt the scale of a chosen
  fraction of a layer.
* ``input_gain`` is a per-neuron multiplier applied to the integrated
  synaptic drive — Attack 1 (current-driver corruption) and Attack 5 scale
  it, mirroring the paper's "voltage change in the neuron membrane for each
  input spike" (their ``theta`` knob).

Units follow BindsNET/Diehl&Cook: membrane potentials in millivolts, time in
milliseconds.

These node groups are the *scalar reference dynamics*.  The lockstep
batched engine (:mod:`repro.snn.batched`) mirrors the exact update
expressions of :meth:`LIFNodes.step` / :meth:`AdaptiveLIFNodes.step` over
stacked ``(variants, examples, n)`` state, and its contract is bit-identical
spike rasters — when editing an update equation here, keep
``repro.snn.batched._LayerBatch`` in sync (the parity suite in
``tests/test_snn_batched.py`` fails loudly otherwise).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.utils.validation import check_positive


class Nodes:
    """Base class for a homogeneous group of neurons.

    Parameters
    ----------
    n:
        Number of neurons in the group.
    dt:
        Simulation step in milliseconds.
    trace_tc:
        Time constant (ms) of the exponential synaptic trace used by STDP.
    """

    def __init__(self, n: int, *, dt: float = 1.0, trace_tc: float = 20.0) -> None:
        if n <= 0:
            raise ValueError(f"a node group needs at least one neuron, got {n}")
        self.n = int(n)
        self.dt = check_positive(dt, "dt")
        self.trace_tc = check_positive(trace_tc, "trace_tc")
        self.trace_decay = math.exp(-self.dt / self.trace_tc)
        self.spikes = np.zeros(self.n, dtype=bool)
        self.traces = np.zeros(self.n, dtype=float)
        self.input_gain = np.ones(self.n, dtype=float)
        self.learning = True

    # ----------------------------------------------------------------- stepping
    def step(self, input_current: np.ndarray) -> np.ndarray:
        """Advance the group by one time step given the summed synaptic drive."""
        raise NotImplementedError

    def update_traces(self) -> None:
        """Decay the synaptic traces and set the trace of spiking neurons to 1."""
        self.traces *= self.trace_decay
        if self.spikes.any():
            self.traces[self.spikes] = 1.0

    def reset_state_variables(self) -> None:
        """Reset all dynamic state (between presented examples)."""
        self.spikes.fill(False)
        self.traces.fill(0.0)

    # ------------------------------------------------------------ attack knobs
    def set_input_gain(self, scale: float, mask: Optional[np.ndarray] = None) -> None:
        """Scale the synaptic drive of the neurons selected by ``mask``.

        ``mask`` defaults to all neurons.  Calling with ``scale=1`` restores
        the nominal gain for the selected neurons.
        """
        if mask is None:
            self.input_gain[:] = scale
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self.n,):
                raise ValueError(f"mask must have shape ({self.n},), got {mask.shape}")
            self.input_gain[mask] = scale

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.n})"


class InputNodes(Nodes):
    """A layer whose spikes are provided externally (the encoded image)."""

    def set_spikes(self, spikes: np.ndarray) -> None:
        """Set this step's spikes from the encoder output."""
        spikes = np.asarray(spikes, dtype=bool).reshape(-1)
        if spikes.shape != (self.n,):
            raise ValueError(f"expected {self.n} input spikes, got {spikes.shape}")
        self.spikes = spikes.copy()

    def step(self, input_current: np.ndarray) -> np.ndarray:
        """Input nodes ignore synaptic drive; spikes are set externally."""
        return self.spikes


#: Threshold-corruption conventions (see :class:`LIFNodes.thresh`).
THRESHOLD_CONVENTIONS = ("signed_value", "rest_gap")


class LIFNodes(Nodes):
    """Leaky integrate-and-fire neurons (the Diehl&Cook inhibitory layer).

    Parameters follow BindsNET's ``LIFNodes`` defaults for the inhibitory
    population of ``DiehlAndCook2015``.

    The ``threshold_convention`` controls how a multiplicative threshold
    corruption (Attacks 2-5) is applied:

    * ``"signed_value"`` (default) — the signed millivolt threshold is scaled
      directly, ``thresh' = thresh * scale``.  Because Diehl&Cook thresholds
      are negative, a "−20 % threshold change" *raises* the firing barrier.
      This is how a BindsNET-level implementation that multiplies
      ``v_thresh`` by ``(1 + change)`` behaves, and it is the convention that
      reproduces the paper's Fig. 7b-9a accuracy trends (catastrophic
      degradation for negative changes).
    * ``"rest_gap"`` — the rest-to-threshold gap is scaled,
      ``thresh' = rest + (thresh - rest) * scale``, which is the
      physically-motivated mapping of an analog threshold-voltage change.
      Kept for the convention ablation benchmark.
    """

    def __init__(
        self,
        n: int,
        *,
        dt: float = 1.0,
        thresh: float = -40.0,
        rest: float = -60.0,
        reset: float = -45.0,
        tc_decay: float = 10.0,
        refractory_period: float = 2.0,
        trace_tc: float = 20.0,
        threshold_convention: str = "signed_value",
    ) -> None:
        super().__init__(n, dt=dt, trace_tc=trace_tc)
        if threshold_convention not in THRESHOLD_CONVENTIONS:
            raise ValueError(
                f"threshold_convention must be one of {THRESHOLD_CONVENTIONS}, "
                f"got {threshold_convention!r}"
            )
        self.threshold_convention = threshold_convention
        self.rest = float(rest)
        self.reset = float(reset)
        self.tc_decay = check_positive(tc_decay, "tc_decay")
        self.decay = math.exp(-self.dt / self.tc_decay)
        self.refractory_period = float(refractory_period)
        #: Uncorrupted per-neuron firing threshold (mV).
        self.base_thresh = np.full(self.n, float(thresh))
        #: Per-neuron multiplicative corruption applied by the attacks.
        self.threshold_scale = np.ones(self.n, dtype=float)
        self.v = np.full(self.n, self.rest)
        self.refractory_count = np.zeros(self.n, dtype=float)

    # -------------------------------------------------------------- thresholds
    @property
    def thresh(self) -> np.ndarray:
        """Effective per-neuron threshold including any attack corruption."""
        if self.threshold_convention == "signed_value":
            return self.base_thresh * self.threshold_scale
        return self.rest + (self.base_thresh - self.rest) * self.threshold_scale

    def set_threshold_scale(self, scale: float, mask: Optional[np.ndarray] = None) -> None:
        """Scale the threshold-to-rest gap of the neurons selected by ``mask``."""
        if scale <= 0:
            raise ValueError(f"threshold scale must be positive, got {scale}")
        if mask is None:
            self.threshold_scale[:] = scale
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self.n,):
                raise ValueError(f"mask must have shape ({self.n},), got {mask.shape}")
            self.threshold_scale[mask] = scale

    def clear_threshold_scale(self) -> None:
        """Remove any threshold corruption."""
        self.threshold_scale[:] = 1.0

    # ----------------------------------------------------------------- dynamics
    def step(self, input_current: np.ndarray) -> np.ndarray:
        input_current = np.asarray(input_current, dtype=float).reshape(-1)
        if input_current.shape != (self.n,):
            raise ValueError(
                f"expected drive of shape ({self.n},), got {input_current.shape}"
            )
        # Leak towards rest.
        self.v = self.decay * (self.v - self.rest) + self.rest
        # Integrate drive only outside the refractory period.
        not_refractory = self.refractory_count <= 0
        self.v = self.v + not_refractory * self.input_gain * input_current
        self.refractory_count = np.maximum(self.refractory_count - self.dt, 0.0)
        # Fire and reset.
        self.spikes = self.v >= self.thresh
        if self.spikes.any():
            self.v[self.spikes] = self.reset
            self.refractory_count[self.spikes] = self.refractory_period
        self.update_traces()
        return self.spikes

    def reset_state_variables(self) -> None:
        super().reset_state_variables()
        self.v = np.full(self.n, self.rest)
        self.refractory_count = np.zeros(self.n, dtype=float)


class AdaptiveLIFNodes(LIFNodes):
    """LIF neurons with an adaptive threshold (Diehl&Cook excitatory layer).

    Every spike raises the neuron's individual threshold offset ``theta`` by
    ``theta_plus``; the offset decays with a very long time constant.  This
    homeostatic mechanism is what forces different excitatory neurons to
    specialise to different digit classes.
    """

    def __init__(
        self,
        n: int,
        *,
        dt: float = 1.0,
        thresh: float = -52.0,
        rest: float = -65.0,
        reset: float = -60.0,
        tc_decay: float = 100.0,
        refractory_period: float = 5.0,
        theta_plus: float = 0.05,
        tc_theta_decay: float = 1e7,
        trace_tc: float = 20.0,
        threshold_convention: str = "signed_value",
    ) -> None:
        super().__init__(
            n,
            dt=dt,
            thresh=thresh,
            rest=rest,
            reset=reset,
            tc_decay=tc_decay,
            refractory_period=refractory_period,
            trace_tc=trace_tc,
            threshold_convention=threshold_convention,
        )
        self.theta_plus = float(theta_plus)
        self.tc_theta_decay = check_positive(tc_theta_decay, "tc_theta_decay")
        self.theta_decay = math.exp(-self.dt / self.tc_theta_decay)
        #: Adaptive per-neuron threshold offset (homeostasis state).
        self.theta = np.zeros(self.n, dtype=float)

    @property
    def thresh(self) -> np.ndarray:
        """Effective threshold: corrupted base threshold plus adaptation."""
        return super().thresh + self.theta

    def step(self, input_current: np.ndarray) -> np.ndarray:
        spikes = super().step(input_current)
        if self.learning:
            self.theta *= self.theta_decay
            if spikes.any():
                self.theta[spikes] += self.theta_plus
        return spikes

    def reset_state_variables(self) -> None:
        """Reset membrane state between examples; adaptation (theta) persists."""
        super().reset_state_variables()
