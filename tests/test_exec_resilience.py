"""Fault-tolerance regression tests: chaotic campaigns end bit-identical.

Every failure mode the supervision layer (:mod:`repro.exec.resilience`)
recovers from — worker death, hangs past the task timeout, transient
exceptions, stragglers, corrupt cache state, killed shards — is injected
deterministically through :mod:`repro.exec.chaos` and must end in the
*same SHA-256-pinned results* as a clean run, with the executor's
resilience counters matching the injected plan.
"""

import dataclasses
import hashlib
import json
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.attacks import Attack3InhibitoryThreshold
from repro.core.reporting import format_execution_report
from repro.core.results import ExperimentResult
from repro.exec import (
    CHAOS_PLANS,
    Fault,
    FaultPlan,
    InjectedFault,
    MergeReport,
    ResilienceExecutorError,
    ResiliencePolicy,
    ResilientExecutor,
    RetryPolicy,
    ShardSpec,
    StragglerPolicy,
    TaskTimeoutError,
    WorkerCrashError,
    attack_cache_key,
    load_fault_plan,
    merge_report,
)
from repro.exec import chaos as chaos_module
from repro.exec.executor import ExecutionStats
from repro.store import PersistentResultCache, _atomic_write_json, _atomic_write_npz


@dataclasses.dataclass
class StubConfig:
    scale_name: str = "stub"
    seed: int = 0


class StubPipeline:
    """Deterministic, instant, picklable pipeline stand-in.

    Accuracy is a pure function of the attack label, so every dispatch of
    a task — first attempt, retry, straggler duplicate, post-rebuild
    re-dispatch — computes the same bits, exactly like the real pipeline's
    determinism contract.
    """

    def __init__(self, config=None):
        self.config = config or StubConfig()

    def run(self, attack) -> ExperimentResult:
        label = attack.label()
        return ExperimentResult(
            attack_label=label, accuracy=(sum(label.encode()) % 97) / 97.0
        )

    def run_baseline(self) -> ExperimentResult:
        return ExperimentResult(attack_label="baseline", accuracy=0.9)


ATTACKS = [None] + [
    Attack3InhibitoryThreshold(threshold_change=change, fraction=fraction)
    for change in (-0.2, -0.1, 0.1, 0.2)
    for fraction in (0.5, 1.0)
]
KEYS = [attack_cache_key(attack) for attack in ATTACKS]

#: SHA-256 of the clean run's accuracy array — every chaotic campaign below
#: must end exactly here.
CLEAN_SHA256 = "7319ff173e875b36b3c36d2158c648cf8610e39677ef2aea357332998e55ce91"

#: Fast backoff so retry-path tests don't sleep their way through CI.
FAST_RETRY = dict(backoff_base=0.01, backoff_max=0.05)


def results_digest(results) -> str:
    return hashlib.sha256(
        np.array([r.accuracy for r in results], dtype=float).tobytes()
    ).hexdigest()


def run_chaotic(plan, *, workers=2, retry=None, straggler=None, cache=None):
    """One full campaign under ``plan``; returns (digest, stats)."""
    policy = ResiliencePolicy(
        retry=retry or RetryPolicy(**FAST_RETRY),
        straggler=straggler or StragglerPolicy(enabled=False),
        chaos=plan,
    )
    with ResilientExecutor(
        StubPipeline(),
        workers=workers,
        pipeline_factory=StubPipeline,
        cache=cache,
        policy=policy,
    ) as executor:
        digest = results_digest(executor.map(ATTACKS))
        return digest, executor.stats


class TestRetryPolicy:
    def test_backoff_schedule_is_reproducible(self):
        first = RetryPolicy(seed=7)
        second = RetryPolicy(seed=7)
        schedule = [first.delay("task-a", n) for n in (1, 2, 3)]
        assert schedule == [second.delay("task-a", n) for n in (1, 2, 3)]

    def test_jitter_depends_on_seed_and_key(self):
        policy = RetryPolicy(seed=1)
        assert policy.delay("a", 1) != policy.delay("b", 1)
        assert policy.delay("a", 1) != RetryPolicy(seed=2).delay("a", 1)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, jitter=0.0
        )
        assert policy.delay("k", 1) == pytest.approx(0.1)
        assert policy.delay("k", 2) == pytest.approx(0.2)
        assert policy.delay("k", 5) == pytest.approx(0.3)  # capped

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5)
        delay = policy.delay("k", 1)
        assert 0.1 <= delay <= 0.1 * 1.5

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="task_timeout"):
            RetryPolicy(task_timeout=0.0)


class TestStragglerPolicy:
    def test_no_deadline_before_min_samples(self):
        policy = StragglerPolicy(min_samples=6)
        assert policy.deadline([1.0] * 5) is None

    def test_deadline_scales_the_percentile(self):
        policy = StragglerPolicy(
            min_samples=4, percentile=90.0, factor=2.0, min_seconds=0.1
        )
        assert policy.deadline([1.0, 1.0, 1.0, 2.0]) == pytest.approx(4.0)

    def test_min_seconds_floor(self):
        policy = StragglerPolicy(min_samples=1, factor=2.0, min_seconds=5.0)
        assert policy.deadline([0.01]) == pytest.approx(5.0)

    def test_disabled_never_fires(self):
        assert StragglerPolicy(enabled=False).deadline([1.0] * 100) is None


class TestResiliencePolicy:
    def test_from_options_maps_the_cli_flags(self):
        plan = CHAOS_PLANS["ci-plan"]
        policy = ResiliencePolicy.from_options(
            task_timeout=3.5, max_retries=4, chaos=plan, seed=11
        )
        assert policy.retry.task_timeout == 3.5
        assert policy.retry.max_retries == 4
        assert policy.retry.seed == 11
        assert policy.chaos is plan

    def test_error_hierarchy(self):
        assert issubclass(TaskTimeoutError, ResilienceExecutorError)
        assert issubclass(WorkerCrashError, ResilienceExecutorError)


class TestFaultPlan:
    def test_fires_gates_on_match_and_attempt(self):
        fault = Fault(action="raise", match="fraction=0.5", attempts=(0,))
        assert fault.fires(0, "A|fraction=0.5", 0)
        assert not fault.fires(0, "A|fraction=1.0", 0)
        assert not fault.fires(0, "A|fraction=0.5", 1)

    def test_probability_extremes(self):
        always = Fault(action="raise", probability=1.0)
        never = Fault(action="raise", probability=0.0)
        assert all(always.fires(0, key, 0) for key in KEYS)
        assert not any(never.fires(0, key, 0) for key in KEYS)

    def test_probability_draw_is_seeded(self):
        fault = Fault(action="raise", probability=0.5)
        first = [fault.fires(3, key, 0) for key in KEYS]
        assert first == [fault.fires(3, key, 0) for key in KEYS]
        assert first != [fault.fires(4, key, 0) for key in KEYS]

    def test_apply_raise(self):
        plan = FaultPlan(faults=(Fault(action="raise"),))
        with pytest.raises(InjectedFault):
            plan.apply("any-task", 0)

    def test_apply_delay_sleeps(self):
        plan = FaultPlan(faults=(Fault(action="delay", delay_seconds=0.05),))
        start = time.perf_counter()
        plan.apply("any-task", 0)
        assert time.perf_counter() - start >= 0.05

    def test_kill_is_demoted_without_allow_kill(self):
        plan = FaultPlan(faults=(Fault(action="kill"),))
        with pytest.raises(InjectedFault, match="demoted"):
            plan.apply("any-task", 0, allow_kill=False)

    def test_count_firing_matches_manual_count(self):
        plan = FaultPlan(seed=9, faults=(Fault(action="raise", probability=0.5),))
        manual = sum(1 for key in KEYS if plan.faults[0].fires(9, key, 0))
        assert plan.count_firing(KEYS, "raise") == manual

    def test_validation(self):
        with pytest.raises(ValueError, match="action"):
            Fault(action="explode")
        with pytest.raises(ValueError, match="probability"):
            Fault(action="raise", probability=1.5)
        with pytest.raises(ValueError, match="delay_seconds"):
            Fault(action="delay", delay_seconds=-1.0)

    def test_json_round_trip(self):
        plan = FaultPlan(
            name="rt",
            seed=5,
            faults=(
                Fault(action="kill", match="x", attempts=(0, 1), exit_code=9),
                Fault(action="delay", delay_seconds=0.5, probability=0.25),
            ),
        )
        assert FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-plan field"):
            FaultPlan.from_dict({"name": "x", "typo": 1})
        with pytest.raises(ValueError, match="unknown fault field"):
            FaultPlan.from_dict({"faults": [{"action": "raise", "typo": 1}]})

    def test_load_fault_plan_by_name_and_path(self, tmp_path):
        assert load_fault_plan("ci-plan") is CHAOS_PLANS["ci-plan"]
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(FaultPlan(name="file-plan").to_dict()))
        assert load_fault_plan(str(path)).name == "file-plan"

    def test_load_fault_plan_errors_name_the_registry(self, tmp_path):
        with pytest.raises(ValueError, match="ci-plan"):
            load_fault_plan("no-such-plan")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_fault_plan(str(bad))


class TestSerialResilience:
    def test_clean_serial_run_pins_the_reference_digest(self):
        with ResilientExecutor(StubPipeline(), workers=0) as executor:
            assert results_digest(executor.map(ATTACKS)) == CLEAN_SHA256
            assert executor.stats.resilience_events() == {
                "retries": 0,
                "timeouts": 0,
                "requeues": 0,
                "pool_rebuilds": 0,
                "quarantined": 0,
            }

    def test_injected_raises_are_retried_bit_identically(self):
        plan = FaultPlan(name="raise", faults=(Fault(action="raise"),))
        digest, stats = run_chaotic(plan, workers=0)
        assert digest == CLEAN_SHA256
        # Every task fails once (attempt 0) and heals on the first retry,
        # so the retry counter equals exactly what the plan injected.
        assert stats.retries == plan.count_firing(KEYS, "raise") == len(KEYS)

    def test_serial_kill_is_demoted_to_a_transient_failure(self):
        plan = FaultPlan(
            name="kill", faults=(Fault(action="kill", match="fraction=0.5"),)
        )
        digest, stats = run_chaotic(plan, workers=0)
        assert digest == CLEAN_SHA256
        assert stats.retries == plan.count_firing(KEYS, "kill") == 4

    def test_retry_budget_exhaustion_raises_the_task_error(self):
        plan = FaultPlan(
            faults=(Fault(action="raise", match="baseline", attempts=(0, 1, 2, 3)),)
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=2, **FAST_RETRY), chaos=plan
        )
        with ResilientExecutor(StubPipeline(), workers=0, policy=policy) as executor:
            with pytest.raises(InjectedFault):
                executor.map(ATTACKS)
            assert executor.stats.retries == 2  # the whole budget was spent


class TestParallelResilience:
    def test_transient_failures_heal_with_matching_counters(self):
        plan = FaultPlan(name="flaky", seed=1, faults=(Fault(action="raise"),))
        digest, stats = run_chaotic(plan)
        assert digest == CLEAN_SHA256
        assert stats.retries == plan.count_firing(KEYS, "raise") == len(KEYS)
        assert stats.pool_rebuilds == 0

    def test_worker_death_rebuilds_the_pool_bit_identically(self):
        plan = FaultPlan(
            name="kill",
            faults=(
                Fault(action="kill", match="threshold_change=-0.2|fraction=1.0"),
            ),
        )
        digest, stats = run_chaotic(plan)
        assert digest == CLEAN_SHA256
        assert stats.pool_rebuilds >= 1

    def test_hung_task_is_replaced_after_the_timeout(self):
        plan = FaultPlan(
            faults=(
                Fault(action="delay", match="baseline", delay_seconds=5.0),
            )
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(task_timeout=0.4, **FAST_RETRY),
            straggler=StragglerPolicy(enabled=False),
            chaos=plan,
        )
        with ResilientExecutor(
            StubPipeline(), workers=2, pipeline_factory=StubPipeline, policy=policy
        ) as executor:
            start = time.perf_counter()
            digest = results_digest(executor.map(ATTACKS))
            wall = time.perf_counter() - start
            assert digest == CLEAN_SHA256
            assert executor.stats.timeouts >= 1
            # map() returned with the replacement's result instead of
            # waiting out the 5 s hang (only pool teardown joins it).
            assert wall < 5.0

    def test_straggler_is_redispatched_first_result_wins(self):
        plan = FaultPlan(
            faults=(
                Fault(action="delay", match="baseline", delay_seconds=4.0),
            )
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(**FAST_RETRY),
            straggler=StragglerPolicy(
                min_samples=4, percentile=90.0, factor=3.0, min_seconds=0.2
            ),
            chaos=plan,
        )
        with ResilientExecutor(
            StubPipeline(), workers=2, pipeline_factory=StubPipeline, policy=policy
        ) as executor:
            start = time.perf_counter()
            digest = results_digest(executor.map(ATTACKS))
            wall = time.perf_counter() - start
            assert digest == CLEAN_SHA256
            assert executor.stats.requeues >= 1
            assert wall < 4.0  # the duplicate's result won, nobody waited out the hang

    def test_retry_budget_exhaustion_fails_but_drains_siblings(self):
        plan = FaultPlan(
            faults=(
                Fault(action="raise", match="baseline", attempts=(0, 1, 2, 3, 4)),
            )
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=1, **FAST_RETRY),
            straggler=StragglerPolicy(enabled=False),
            chaos=plan,
        )
        with ResilientExecutor(
            StubPipeline(), workers=2, pipeline_factory=StubPipeline, policy=policy
        ) as executor:
            with pytest.raises(InjectedFault):
                executor.map(ATTACKS)
            siblings = executor.peek_results(ATTACKS[1:])
            assert all(result is not None for result in siblings)

    def test_endless_worker_death_exhausts_the_rebuild_budget(self):
        plan = FaultPlan(
            faults=(
                Fault(action="kill", match="baseline", attempts=tuple(range(8))),
            )
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_retries=6, max_pool_rebuilds=2, **FAST_RETRY),
            straggler=StragglerPolicy(enabled=False),
            chaos=plan,
        )
        with ResilientExecutor(
            StubPipeline(), workers=2, pipeline_factory=StubPipeline, policy=policy
        ) as executor:
            with pytest.raises(WorkerCrashError, match="pool rebuilds"):
                executor.map(ATTACKS)


class TestCacheCorruptionRecovery:
    """Every corruption mode is quarantined, warned about and recomputed."""

    def _populate(self, path) -> None:
        cache = PersistentResultCache(path)
        with ResilientExecutor(StubPipeline(), workers=0, cache=cache) as executor:
            assert results_digest(executor.map(ATTACKS)) == CLEAN_SHA256

    def _recompute(self, path):
        """Reopen the cache (quarantine happens here) and re-run the campaign."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cache = PersistentResultCache(path)
        with ResilientExecutor(StubPipeline(), workers=0, cache=cache) as executor:
            digest = results_digest(executor.map(ATTACKS))
            return digest, executor.stats, cache, caught

    def test_digest_mismatch_quarantines_the_entry(self, tmp_path):
        path = tmp_path / "cache.json"
        self._populate(path)
        assert chaos_module.corrupt_cache_entry(path, match="baseline") == 1
        digest, stats, cache, caught = self._recompute(path)
        assert digest == CLEAN_SHA256
        assert cache.quarantined_entries == 1
        assert stats.quarantined == 1  # surfaced into executor stats
        assert len(cache.quarantined_files) == 1
        assert cache.quarantined_files[0].exists()  # original kept for post-mortem
        assert any("digest mismatch" in str(w.message) for w in caught)
        # Only the corrupt entry recomputed; siblings stayed cache hits.
        assert stats.tasks_executed == 1
        assert stats.cache_hits == len(ATTACKS) - 1

    def test_truncated_cache_file_is_moved_aside(self, tmp_path):
        path = tmp_path / "cache.json"
        self._populate(path)
        chaos_module.truncate_file(path, keep_bytes=20)
        digest, stats, cache, caught = self._recompute(path)
        assert digest == CLEAN_SHA256
        assert cache.quarantined_files == [tmp_path / "cache.json.quarantined"]
        assert any("quarantined corrupt result cache" in str(w.message) for w in caught)
        assert stats.tasks_executed == len(ATTACKS)  # everything recomputed

    def test_empty_cache_file_is_moved_aside(self, tmp_path):
        path = tmp_path / "cache.json"
        self._populate(path)
        path.write_text("")
        digest, _, cache, caught = self._recompute(path)
        assert digest == CLEAN_SHA256
        assert len(cache.quarantined_files) == 1
        assert caught  # warned, not crashed

    def test_quarantine_self_heals_on_the_next_run(self, tmp_path):
        path = tmp_path / "cache.json"
        self._populate(path)
        chaos_module.corrupt_cache_entry(path)
        self._recompute(path)
        # The recomputed flush rewrote a fully valid file.
        digest, stats, cache, caught = self._recompute(path)
        assert digest == CLEAN_SHA256
        assert cache.quarantined_entries == 0
        assert not caught
        assert stats.cache_hits == len(ATTACKS)

    def test_corrupt_cache_chaos_action_round_trips_through_apply_disk(
        self, tmp_path
    ):
        path = tmp_path / "cache.json"
        self._populate(path)
        plan = FaultPlan(faults=(Fault(action="corrupt_cache", match="baseline"),))
        assert plan.apply_disk(tmp_path) == 1
        digest, stats, cache, _ = self._recompute(path)
        assert digest == CLEAN_SHA256
        assert cache.quarantined_entries == 1


class TestKilledShardResume:
    def test_interrupted_campaign_resumes_from_the_persistent_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        first = PersistentResultCache(path)
        # A campaign killed partway: only the first half of the grid landed.
        with ResilientExecutor(StubPipeline(), workers=0, cache=first) as executor:
            executor.map(ATTACKS[: len(ATTACKS) // 2])
        # A fresh process pointed at the same cache finishes the rest.
        second = PersistentResultCache(path)
        with ResilientExecutor(StubPipeline(), workers=0, cache=second) as executor:
            digest = results_digest(executor.map(ATTACKS))
            assert digest == CLEAN_SHA256
            assert executor.stats.cache_hits == len(ATTACKS) // 2
            assert executor.stats.tasks_executed == len(ATTACKS) - len(ATTACKS) // 2


class TestAtomicWrites:
    def test_interrupted_json_write_preserves_the_original(self, tmp_path, monkeypatch):
        path = tmp_path / "artifact.json"
        _atomic_write_json(path, {"value": 1})

        def explode(fd):
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(os, "fsync", explode)
        with pytest.raises(OSError, match="simulated crash"):
            _atomic_write_json(path, {"value": 2})
        assert json.loads(path.read_text(encoding="utf-8")) == {"value": 1}

    def test_interrupted_npz_write_preserves_the_original(self, tmp_path, monkeypatch):
        path = tmp_path / "arrays.npz"
        original = {"a": np.arange(4.0)}
        _atomic_write_npz(path, original)

        def explode(fd):
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(os, "fsync", explode)
        with pytest.raises(OSError, match="simulated crash"):
            _atomic_write_npz(path, {"a": np.zeros(4)})
        with np.load(path) as loaded:
            np.testing.assert_array_equal(loaded["a"], original["a"])

    def test_cache_flush_survives_a_simulated_interrupt(self, tmp_path, monkeypatch):
        path = tmp_path / "cache.json"
        cache = PersistentResultCache(path)
        cache.put("k1", ExperimentResult(attack_label="A", accuracy=0.5))

        def explode(fd):
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(os, "fsync", explode)
        with pytest.raises(OSError):
            cache.put("k2", ExperimentResult(attack_label="B", accuracy=0.25))
        monkeypatch.undo()
        # The torn flush lost nothing: the previous file is intact and the
        # digest-verified entry still loads.
        reopened = PersistentResultCache(path)
        assert reopened.peek("k1") == ExperimentResult(attack_label="A", accuracy=0.5)
        assert reopened.quarantined_entries == 0


class TestShardMergeReport:
    def test_complete_report(self):
        report = merge_report([object()] * 4, ShardSpec(index=0, count=2))
        assert report.complete
        assert report.missing == 0
        assert report.missing_shards == ()
        assert "all 4 variant(s) resolved" in report.describe()

    def test_missing_positions_map_to_owning_shards(self):
        resolved = [object(), None, object(), None, object(), None]
        report = merge_report(resolved, ShardSpec(index=0, count=3))
        assert report.missing_positions == (1, 3, 5)
        # Positions 1, 3, 5 of a 3-way interleave belong to shards 1, 0, 2.
        assert report.missing_shards == (0, 1, 2)
        text = report.describe()
        assert "3 of 6 variant(s) unresolved" in text
        assert "1, 3, 5" in text
        assert "0/3" in text and "1/3" in text and "2/3" in text

    def test_describe_truncates_long_position_lists(self):
        report = MergeReport(total=40, count=2, missing_positions=tuple(range(20)))
        text = report.describe(limit=8)
        assert "… (12 more)" in text

    def test_resume_commands_render_one_per_missing_shard(self):
        report = MergeReport(total=6, count=3, missing_positions=(1, 4))
        commands = report.resume_commands("repro scenarios run X --shard {shard}")
        assert commands == ["repro scenarios run X --shard 1/3"]


class TestReporting:
    def test_clean_report_omits_resilience_rows(self):
        stats = ExecutionStats()
        report = format_execution_report(stats)
        assert "task retries" not in report
        assert "worker-pool rebuilds" not in report

    def test_recovered_faults_appear_in_the_report(self):
        stats = ExecutionStats(retries=3, timeouts=1, pool_rebuilds=2, quarantined=4)
        report = format_execution_report(stats)
        assert "task retries" in report and "3" in report
        assert "task timeouts" in report
        assert "worker-pool rebuilds" in report
        assert "quarantined cache entries" in report


# --------------------------------------------------------------------------
# CLI integration: --chaos end to end, shard-merge reporting, signals.
# --------------------------------------------------------------------------

REPO_ROOT = Path(__file__).resolve().parents[1]


def _cli_main(argv):
    from repro.cli import main

    return main(argv)


class TestCLIChaos:
    def test_chaos_scenario_run_is_bit_identical_with_counters(self, tmp_path, capsys):
        plan = FaultPlan(name="test-plan", faults=(Fault(action="raise"),))
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan.to_dict()))
        clean_dir, chaos_dir = tmp_path / "clean", tmp_path / "chaos"
        base = ["scenarios", "run", "separate_domain_droop", "--scale", "tiny", "--quiet"]
        assert _cli_main(base + ["--out", str(clean_dir)]) == 0
        assert _cli_main(base + ["--out", str(chaos_dir), "--chaos", str(plan_path)]) == 0
        capsys.readouterr()

        clean = json.loads((clean_dir / "scenario-separate_domain_droop.json").read_text())
        chaotic = json.loads((chaos_dir / "scenario-separate_domain_droop.json").read_text())
        assert chaotic["metrics"] == clean["metrics"]
        # Per-array SHA-256 digests (and shapes/dtypes) must be identical.
        assert chaotic["arrays"] == clean["arrays"]
        # The provenance counters record exactly the injected plan: every
        # task (2 variants + baseline) failed once and was retried.
        assert chaotic["provenance"]["resilience"]["retries"] == 3
        assert clean["provenance"]["resilience"]["retries"] == 0

    def test_unknown_chaos_plan_exits_with_the_registry(self, tmp_path):
        with pytest.raises(SystemExit, match="ci-plan"):
            _cli_main(
                ["scenarios", "run", "separate_domain_droop", "--scale", "tiny",
                 "--out", str(tmp_path), "--chaos", "bogus"]
            )


class TestCLIShardMergeReporting:
    def test_incomplete_merge_names_missing_shards_and_resume_command(
        self, tmp_path, capsys
    ):
        code = _cli_main(
            ["scenarios", "run", "separate_domain_droop", "--scale", "tiny",
             "--out", str(tmp_path), "--shard", "0/3", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "waiting on 1 variant(s)" in out
        assert "owned by shard(s) 1/3" in out
        assert (
            f"resume with: python -m repro scenarios run separate_domain_droop "
            f"--shard 1/3 --out {tmp_path}" in out
        )

    def test_all_shards_then_any_invocation_merges(self, tmp_path, capsys):
        base = ["scenarios", "run", "separate_domain_droop", "--scale", "tiny",
                "--out", str(tmp_path), "--quiet"]
        for index in range(3):
            assert _cli_main(base + ["--shard", f"{index}/3"]) == 0
        assert _cli_main(base + ["--shard", "0/3"]) == 0
        out = capsys.readouterr().out
        assert (tmp_path / "scenario-separate_domain_droop.json").exists()
        assert "waiting on" not in out.rsplit("[separate_domain_droop]", 1)[-1]


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signal semantics")
class TestGracefulShutdown:
    """Ctrl-C / SIGTERM land a distinct exit code, no traceback, warm cache."""

    def _launch(self, tmp_path):
        # A delay fault stretches each task so the signal reliably lands
        # mid-campaign; tasks and chaos are otherwise the normal tiny run.
        plan = FaultPlan(
            name="slow", faults=(Fault(action="delay", delay_seconds=1.5),)
        )
        plan_path = tmp_path / "slow.json"
        plan_path.write_text(json.dumps(plan.to_dict()))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "scenarios", "run",
             "separate_domain_droop", "--scale", "tiny", "--quiet",
             "--out", str(tmp_path / "out"), "--chaos", str(plan_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        # The campaign header proves the run (and the signal handler) is up.
        line = process.stdout.readline()
        assert "[separate_domain_droop]" in line
        time.sleep(0.5)
        return process

    def _finish(self, process):
        try:
            stdout, stderr = process.communicate(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - debugging aid
            process.kill()
            raise
        return process.returncode, stdout, stderr

    def test_sigint_exits_130_without_traceback(self, tmp_path):
        process = self._launch(tmp_path)
        process.send_signal(signal.SIGINT)
        code, _, stderr = self._finish(process)
        assert code == 130
        assert "interrupted" in stderr
        assert "Traceback" not in stderr

    def test_sigterm_exits_143_without_traceback(self, tmp_path):
        process = self._launch(tmp_path)
        process.send_signal(signal.SIGTERM)
        code, _, stderr = self._finish(process)
        assert code == 143
        assert "terminated" in stderr
        assert "Traceback" not in stderr
