"""Tests for the defense models (paper Sec. V)."""

import numpy as np
import pytest

from repro.defenses import (
    BandgapThresholdDefense,
    ComparatorNeuronDefense,
    DummyNeuronDetector,
    RobustDriverDefense,
    SizingDefense,
    overhead_report,
)
from repro.defenses.overhead import PAPER_OVERHEADS


class TestRobustDriverDefense:
    def test_residual_theta_change_is_tiny(self):
        defense = RobustDriverDefense()
        for vdd in (0.8, 0.9, 1.1, 1.2):
            assert abs(defense.residual_theta_change(vdd)) < 0.01

    def test_suppression_factor_large(self):
        defense = RobustDriverDefense()
        assert defense.suppression_factor(0.8) > 20.0

    def test_undefended_change_matches_driver_model(self):
        defense = RobustDriverDefense()
        assert defense.undefended_theta_scale(0.8) == pytest.approx(0.65, abs=0.05)

    def test_amplitude_vs_vdd_flat(self):
        defense = RobustDriverDefense()
        amplitudes = defense.amplitude_vs_vdd([0.8, 1.0, 1.2])
        assert np.ptp(amplitudes) / amplitudes.mean() < 0.01

    def test_overhead_matches_paper(self):
        assert RobustDriverDefense().power_overhead == pytest.approx(0.03)


class TestBandgapThresholdDefense:
    def test_residual_threshold_change_within_reference_spec(self):
        defense = BandgapThresholdDefense()
        for vdd in (0.8, 1.2):
            assert abs(defense.residual_threshold_change(vdd)) <= 0.006

    def test_undefended_scale_tracks_divider(self):
        defense = BandgapThresholdDefense()
        assert defense.undefended_threshold_scale(0.8) == pytest.approx(0.8)

    def test_area_overhead_amortises_with_network_size(self):
        defense = BandgapThresholdDefense()
        assert defense.area_overhead(200) == pytest.approx(0.65)
        assert defense.area_overhead(2000) == pytest.approx(0.065)

    def test_threshold_vs_vdd_flat(self):
        defense = BandgapThresholdDefense()
        thresholds = defense.threshold_vs_vdd([0.85, 1.0, 1.2])
        assert np.ptp(thresholds) < 0.01


class TestSizingDefense:
    def test_upsizing_reduces_threshold_sensitivity(self):
        defense = SizingDefense()
        baseline_change = defense.threshold_change(1.0, vdd=0.8)
        upsized_change = defense.threshold_change(32.0, vdd=0.8)
        # Paper Fig. 9c: from about -18 % to about -5 % at 0.8 V.
        assert baseline_change < -0.10
        assert abs(upsized_change) < abs(baseline_change) / 2
        assert abs(upsized_change) < 0.08

    def test_sweep_is_monotone_in_sizing_factor(self):
        defense = SizingDefense()
        points = defense.sweep((1, 2, 4, 8, 16, 32), vdd=0.8)
        changes = [abs(point.threshold_change) for point in points]
        assert all(a >= b - 1e-9 for a, b in zip(changes, changes[1:]))

    def test_residual_threshold_scale(self):
        defense = SizingDefense()
        scale = defense.residual_threshold_scale(32.0, 0.8)
        assert 0.9 < scale < 1.0

    def test_pmos_variant_supported(self):
        defense = SizingDefense(upsized_device="pmos")
        assert isinstance(defense.threshold_change(4.0, 0.8), float)
        with pytest.raises(ValueError):
            SizingDefense(upsized_device="finfet")

    def test_overhead_matches_paper(self):
        assert SizingDefense().power_overhead == pytest.approx(0.25)


class TestComparatorDefense:
    def test_threshold_pinned_across_vdd(self):
        defense = ComparatorNeuronDefense()
        for vdd in (0.8, 1.0, 1.2):
            assert defense.threshold_scale(vdd) == pytest.approx(1.0, abs=0.01)

    def test_undefended_threshold_still_moves(self):
        defense = ComparatorNeuronDefense()
        assert defense.undefended_threshold_scale(0.8) < 0.9

    def test_protected_neuron_uses_reference(self):
        defense = ComparatorNeuronDefense()
        neuron = defense.protected_neuron(0.8)
        assert neuron.membrane_threshold() == pytest.approx(defense.reference.output(0.8))

    def test_overhead_matches_paper(self):
        assert ComparatorNeuronDefense().power_overhead == pytest.approx(0.11)


class TestDummyNeuronDetector:
    @pytest.mark.parametrize("neuron_type", ["axon_hillock", "if_amplifier"])
    def test_detects_20_percent_vdd_faults(self, neuron_type):
        detector = DummyNeuronDetector(neuron_type=neuron_type)
        assert detector.evaluate(0.8).detected
        assert detector.evaluate(1.2).detected

    def test_nominal_supply_not_flagged(self):
        detector = DummyNeuronDetector()
        outcome = detector.evaluate(1.0)
        assert not outcome.detected
        assert outcome.deviation == 0.0

    def test_spike_count_monotone_in_vdd(self):
        detector = DummyNeuronDetector(neuron_type="axon_hillock")
        counts = [detector.spike_count(v) for v in (0.8, 0.9, 1.0, 1.1, 1.2)]
        assert all(a < b for a, b in zip(counts, counts[1:]))

    def test_detection_rate_excludes_nominal_point(self):
        detector = DummyNeuronDetector()
        rate = detector.detection_rate([0.8, 1.0, 1.2])
        assert rate == 1.0

    def test_invalid_neuron_type(self):
        with pytest.raises(ValueError):
            DummyNeuronDetector(neuron_type="izhikevich")


class TestOverheadReport:
    def test_contains_all_paper_defenses(self):
        names = {overhead.name for overhead in overhead_report()}
        assert names == set(PAPER_OVERHEADS)

    def test_paper_numbers(self):
        report = {o.name: o for o in overhead_report(200)}
        assert report["robust_current_driver"].power_overhead == pytest.approx(0.03)
        assert report["axon_hillock_sizing"].power_overhead == pytest.approx(0.25)
        assert report["comparator_neuron"].power_overhead == pytest.approx(0.11)
        assert report["bandgap_threshold"].area_overhead == pytest.approx(0.65)
        assert report["dummy_neuron_detector"].power_overhead == pytest.approx(0.01)

    def test_bandgap_area_amortises(self):
        report = {o.name: o for o in overhead_report(20000)}
        assert report["bandgap_threshold"].area_overhead < 0.01
        # Per-neuron defenses do not amortise.
        assert report["axon_hillock_sizing"].area_overhead == pytest.approx(0.01)

    def test_rows_render(self):
        for overhead in overhead_report():
            row = overhead.as_row()
            assert len(row) == 4 and "%" in row[1]


class TestDefenseAccuracyEvaluator:
    class _StubPipeline:
        """Accuracy falls linearly with |threshold change|; protocol-complete."""

        class _Config:
            scale_name = "stub"

        def __init__(self):
            self.config = self._Config()
            self.run_count = 0

        def run(self, attack):
            self.run_count += 1
            from repro.core.results import ExperimentResult

            accuracy = max(0.0, 0.9 - 3.0 * abs(attack.threshold_change))
            return ExperimentResult(attack_label=attack.label(), accuracy=accuracy)

        def run_baseline(self):
            self.run_count += 1
            from repro.core.results import ExperimentResult

            return ExperimentResult(attack_label="baseline", accuracy=0.9)

    def test_defended_beats_undefended(self):
        from repro.defenses import DefenseAccuracyEvaluator

        pipeline = self._StubPipeline()
        evaluator = DefenseAccuracyEvaluator(pipeline)
        points = evaluator.evaluate_threshold_defenses(
            {"32x sizing": -0.05, "comparator": -0.005}, undefended_change=-0.2
        )
        assert [p.defense_name for p in points] == ["32x sizing", "comparator"]
        for point in points:
            assert point.defended.accuracy > point.undefended.accuracy
            assert point.accuracy_recovered > 0
            assert 0 <= point.residual_degradation < 0.25
        # comparator leaves less residual corruption than sizing
        assert points[1].defended.accuracy > points[0].defended.accuracy
        assert "%" in points[0].as_row()[1]

    def test_results_shared_through_executor_cache(self):
        from repro.defenses import DefenseAccuracyEvaluator

        pipeline = self._StubPipeline()
        evaluator = DefenseAccuracyEvaluator(pipeline)
        evaluator.evaluate_threshold_defenses({"a": -0.05})
        first_count = pipeline.run_count  # baseline + undefended + defended
        evaluator.evaluate_threshold_defenses({"a": -0.05})
        assert pipeline.run_count == first_count  # fully cached
