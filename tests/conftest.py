"""Shared fixtures for the test suite.

The expensive fixtures (trained pipelines) are session-scoped so the
integration tests reuse one smoke-scale training run instead of repeating
it per test.
"""

from __future__ import annotations

import pytest

from repro.core import ClassificationPipeline, ExperimentConfig


@pytest.fixture(scope="session")
def smoke_config() -> ExperimentConfig:
    """The tiny experiment scale used by integration tests."""
    return ExperimentConfig.smoke()


@pytest.fixture(scope="session")
def smoke_pipeline(smoke_config) -> ClassificationPipeline:
    """A pipeline at smoke scale (dataset generated once per session)."""
    return ClassificationPipeline(smoke_config)


@pytest.fixture(scope="session")
def smoke_baseline(smoke_pipeline):
    """The attack-free smoke-scale result (trains one network)."""
    return smoke_pipeline.run_baseline()
