"""Tests for elastic crash-tolerant campaign execution (ISSUE 9).

Covers: lease-board atomics (exclusive claim, mtime-judged expiry, steal
with attempt accounting, first-result-wins completion, corrupt-lease
quarantine), the work-stealing scheduler (drain, dead-peer steal, dispatch
budget, straggler duplication, peer accounting), chunk building, stale
artifact sweeps, sibling-preload retry on transient read failures, the
``owns_name`` balance of the static shard splitter, elastic merge-report
rendering, the elastic ``ScenarioRunner`` paths, and the CLI contract:
kill a cooperating worker mid-chunk and the survivors still produce an
artifact bit-identical to a single-process run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.core import ExperimentConfig
from repro.core.results import ExperimentResult
from repro.exec.cache import ResultCache
from repro.exec.chaos import Fault, FaultPlan
from repro.exec.elastic import (
    Chunk,
    ElasticPolicy,
    ElasticScheduler,
    Lease,
    LeaseBoard,
    LeaseCorruptionError,
    _write_json_atomic,
    build_chunks,
    default_worker_id,
    find_stale_artifacts,
    sweep_expired_leases,
    sweep_stale_artifacts,
    whole_chunk,
)
from repro.exec.executor import ExecutionStats
from repro.exec.shard import MergeReport, ShardSpec
from repro.scenarios import ScenarioRunner, ScenarioSpec, scenario_names
from repro.store import CacheCorruptionError, PersistentResultCache, open_worker_cache

# --------------------------------------------------------------------------
# Policy and chunking.
# --------------------------------------------------------------------------


class TestElasticPolicy:
    def test_defaults_are_valid(self):
        policy = ElasticPolicy()
        assert policy.effective_heartbeat == pytest.approx(policy.lease_ttl / 4)
        assert policy.effective_straggler_after == pytest.approx(
            4 * policy.lease_ttl
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lease_ttl": 0.0},
            {"lease_ttl": -1.0},
            {"chunk_size": 0},
            {"max_attempts": 0},
            {"heartbeat_interval": -0.1},
        ],
    )
    def test_invalid_values_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ElasticPolicy(**kwargs)

    def test_explicit_intervals_win_over_defaults(self):
        policy = ElasticPolicy(heartbeat_interval=1.5, straggler_after=9.0)
        assert policy.effective_heartbeat == 1.5
        assert policy.effective_straggler_after == 9.0


class TestChunks:
    def test_chunks_partition_all_positions_contiguously(self):
        chunks = build_chunks(10, 4)
        assert [c.id for c in chunks] == ["chunk-0000", "chunk-0001", "chunk-0002"]
        assert [c.positions for c in chunks] == [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9),
        ]

    def test_empty_grid_has_no_chunks(self):
        assert build_chunks(0, 4) == []

    def test_invalid_chunk_size_is_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            build_chunks(10, 0)

    def test_whole_chunk_is_a_single_lease_unit(self):
        chunk = whole_chunk(3)
        assert chunk.id == "whole"
        assert chunk.positions == (0, 1, 2)

    def test_default_worker_id_is_filesystem_safe(self):
        worker = default_worker_id()
        assert worker
        assert "/" not in worker and " " not in worker


# --------------------------------------------------------------------------
# Lease board atomics.
# --------------------------------------------------------------------------


def _backdate(path: Path, seconds: float) -> None:
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestLeaseBoard:
    def test_claim_is_exclusive(self, tmp_path):
        board = LeaseBoard(tmp_path, lease_ttl=60.0)
        first = board.claim("chunk-0000", "alice")
        assert first is not None and first.owner == "alice"
        assert board.claim("chunk-0000", "bob") is None
        kind, lease = board.state("chunk-0000")
        assert kind == "held" and lease.owner == "alice"

    def test_expiry_is_judged_by_file_mtime(self, tmp_path):
        board = LeaseBoard(tmp_path, lease_ttl=5.0)
        board.claim("chunk-0000", "alice")
        assert board.state("chunk-0000")[0] == "held"
        _backdate(board.lease_path("chunk-0000"), 100.0)
        assert board.state("chunk-0000")[0] == "expired"

    def test_renew_bumps_the_mtime_back_to_fresh(self, tmp_path):
        board = LeaseBoard(tmp_path, lease_ttl=5.0)
        lease = board.claim("chunk-0000", "alice")
        _backdate(board.lease_path("chunk-0000"), 100.0)
        renewed = board.renew(lease)
        assert renewed.heartbeat_unix >= lease.heartbeat_unix
        assert board.state("chunk-0000")[0] == "held"

    def test_steal_increments_the_attempt(self, tmp_path):
        board = LeaseBoard(tmp_path, lease_ttl=5.0)
        dead = board.claim("chunk-0000", "dead")
        _backdate(board.lease_path("chunk-0000"), 100.0)
        stolen = board.steal("chunk-0000", "bob", dead)
        assert stolen is not None
        assert stolen.owner == "bob"
        assert stolen.attempt == dead.attempt + 1

    def test_steal_of_a_vanished_lease_loses_gracefully(self, tmp_path):
        board = LeaseBoard(tmp_path, lease_ttl=5.0)
        dead = board.claim("chunk-0000", "dead")
        board.lease_path("chunk-0000").unlink()
        assert board.steal("chunk-0000", "bob", dead) is None

    def test_complete_is_first_result_wins(self, tmp_path):
        board = LeaseBoard(tmp_path, lease_ttl=60.0)
        board.claim("chunk-0000", "alice")
        assert board.complete("chunk-0000", "alice") is True
        assert board.complete("chunk-0000", "bob") is False
        assert board.state("chunk-0000")[0] == "done"
        assert not board.lease_path("chunk-0000").exists()

    def test_corrupt_lease_is_detected_and_quarantined(self, tmp_path):
        board = LeaseBoard(tmp_path, lease_ttl=60.0)
        board.lease_path("chunk-0000").write_text('{"corrupt')
        assert board.state("chunk-0000")[0] == "corrupt"
        with pytest.raises(LeaseCorruptionError):
            board.read("chunk-0000")
        reclaimed = board.reclaim_corrupt("chunk-0000", "bob")
        assert reclaimed is not None and reclaimed.attempt == 1
        quarantined = [
            p for p in board.directory.iterdir() if ".quarantined" in p.name
        ]
        assert len(quarantined) == 1

    def test_lease_round_trips_and_rejects_bad_documents(self):
        lease = Lease(
            owner="a", chunk="c", attempt=2, created_unix=1.0, heartbeat_unix=2.0
        )
        assert Lease.from_dict(lease.to_dict()) == lease
        with pytest.raises(LeaseCorruptionError):
            Lease.from_dict({"owner": "a"})
        with pytest.raises(LeaseCorruptionError):
            Lease.from_dict("not a dict")


# --------------------------------------------------------------------------
# Scheduler: drain, steal, budget, stragglers.
# --------------------------------------------------------------------------


def _policy(**overrides) -> ElasticPolicy:
    base = dict(lease_ttl=60.0, poll_interval=0.01, chunk_size=2)
    base.update(overrides)
    return ElasticPolicy(**base)


class TestElasticScheduler:
    def test_single_worker_drains_every_chunk(self, tmp_path):
        stats = ExecutionStats()
        scheduler = ElasticScheduler(
            tmp_path, "scn", policy=_policy(), owner="solo", stats=stats
        )
        chunks = build_chunks(5, 2)
        ran: list = []
        kinds = scheduler.drain(chunks, lambda chunk: ran.append(chunk.id))
        assert all(kind == "done" for kind in kinds.values())
        assert sorted(ran) == [c.id for c in chunks]
        assert stats.leases_claimed == len(chunks)
        assert stats.leases_stolen == 0
        assert scheduler.categorize(chunks, kinds) == ((), ())

    def test_second_drain_is_a_noop_over_done_markers(self, tmp_path):
        first = ElasticScheduler(tmp_path, "scn", policy=_policy(), owner="a")
        chunks = build_chunks(4, 2)
        first.drain(chunks, lambda chunk: None)
        stats = ExecutionStats()
        second = ElasticScheduler(
            tmp_path, "scn", policy=_policy(), owner="b", stats=stats
        )
        ran: list = []
        kinds = second.drain(chunks, lambda chunk: ran.append(chunk.id))
        assert all(kind == "done" for kind in kinds.values())
        assert ran == []
        assert stats.leases_claimed == 0

    def test_dead_peer_lease_is_stolen_and_completed(self, tmp_path):
        stats = ExecutionStats()
        scheduler = ElasticScheduler(
            tmp_path, "scn", policy=_policy(lease_ttl=1.0), owner="bob", stats=stats
        )
        chunks = build_chunks(2, 2)
        dead = scheduler.board.claim("chunk-0000", "dead-peer")
        assert dead is not None
        _backdate(scheduler.board.lease_path("chunk-0000"), 50.0)
        kinds = scheduler.drain(chunks, lambda chunk: None)
        assert kinds["chunk-0000"] == "done"
        assert stats.leases_stolen == 1
        assert stats.leases_expired == 1

    def test_over_budget_chunk_is_reported_lost(self, tmp_path):
        stats = ExecutionStats()
        scheduler = ElasticScheduler(
            tmp_path,
            "scn",
            policy=_policy(lease_ttl=1.0, max_attempts=2),
            owner="bob",
            stats=stats,
        )
        chunks = build_chunks(3, 2)
        burned = Lease(
            owner="dead",
            chunk="chunk-0000",
            attempt=5,
            created_unix=time.time() - 50.0,
            heartbeat_unix=time.time() - 50.0,
        )
        _write_json_atomic(
            scheduler.board.lease_path("chunk-0000"), burned.to_dict()
        )
        _backdate(scheduler.board.lease_path("chunk-0000"), 50.0)
        kinds = scheduler.drain(chunks, lambda chunk: None)
        assert kinds["chunk-0000"] == "expired"
        assert kinds["chunk-0001"] == "done"
        unclaimed, lost = scheduler.categorize(chunks, kinds)
        assert unclaimed == ()
        assert lost == (0, 1)

    def test_straggling_live_peer_is_duplicated_first_result_wins(self, tmp_path):
        stats = ExecutionStats()
        scheduler = ElasticScheduler(
            tmp_path,
            "scn",
            policy=_policy(lease_ttl=300.0, straggler_after=1.0),
            owner="bob",
            stats=stats,
        )
        chunks = build_chunks(2, 2)
        # A live (fresh mtime) peer that has held its lease far too long.
        slow = Lease(
            owner="slowpoke",
            chunk="chunk-0000",
            attempt=0,
            created_unix=time.time() - 100.0,
            heartbeat_unix=time.time(),
        )
        _write_json_atomic(scheduler.board.lease_path("chunk-0000"), slow.to_dict())
        ran: list = []
        kinds = scheduler.drain(chunks, lambda chunk: ran.append(chunk.id))
        assert kinds["chunk-0000"] == "done"
        assert "chunk-0000" in ran
        assert stats.duplicate_wins == 1
        assert stats.leases_stolen == 0  # duplication, not theft

    def test_corrupt_lease_is_reclaimed_during_drain(self, tmp_path):
        stats = ExecutionStats()
        scheduler = ElasticScheduler(
            tmp_path, "scn", policy=_policy(), owner="bob", stats=stats
        )
        chunks = build_chunks(2, 2)
        scheduler.board.lease_path("chunk-0000").write_text("garbage!")
        kinds = scheduler.drain(chunks, lambda chunk: None)
        assert all(kind == "done" for kind in kinds.values())
        assert stats.leases_claimed == len(chunks)

    def test_heartbeat_renews_the_held_lease_mtime(self, tmp_path):
        policy = _policy(lease_ttl=5.0, heartbeat_interval=0.001)
        scheduler = ElasticScheduler(tmp_path, "scn", policy=policy, owner="bob")
        lease = scheduler.board.claim("chunk-0000", scheduler.owner)
        scheduler._current = lease
        _backdate(scheduler.board.lease_path("chunk-0000"), 100.0)
        scheduler.heartbeat(force=True)
        assert scheduler.board.state("chunk-0000")[0] == "held"

    def test_peer_accounting_counts_joins_and_losses(self, tmp_path):
        policy = _policy(lease_ttl=1.0)
        stats = ExecutionStats()
        scheduler = ElasticScheduler(
            tmp_path, "scn", policy=policy, owner="me", stats=stats
        )
        peer_file = tmp_path / "workers" / "peer.json"
        _write_json_atomic(peer_file, {"owner": "peer", "heartbeat_unix": 0.0})
        scheduler._account_peers()
        assert stats.peers_joined == 1  # itself is never counted
        assert stats.peers_lost == 0
        _backdate(peer_file, 50.0)
        scheduler._account_peers()
        assert stats.peers_lost == 1

    def test_startup_sweep_removes_only_ancient_leases(self, tmp_path):
        board = LeaseBoard(tmp_path / "leases" / "scn", lease_ttl=60.0)
        board.claim("chunk-0000", "old")
        board.claim("chunk-0001", "recent")
        _backdate(board.lease_path("chunk-0000"), 10_000.0)
        scheduler = ElasticScheduler(
            tmp_path, "scn", policy=_policy(startup_sweep_age=600.0), owner="me"
        )
        assert scheduler.swept_at_startup == 1
        assert not board.lease_path("chunk-0000").exists()
        assert board.lease_path("chunk-0001").exists()

    def test_claim_whole_outcomes(self, tmp_path):
        chunk = whole_chunk()
        a = ElasticScheduler(tmp_path, "scn", policy=_policy(), owner="a")
        outcome, lease = a.claim_whole(chunk)
        assert outcome == "claimed" and lease.owner == "a"
        b = ElasticScheduler(tmp_path, "scn", policy=_policy(), owner="b")
        assert b.claim_whole(chunk)[0] == "busy"
        a.board.complete(chunk.id, "a")
        assert b.claim_whole(chunk)[0] == "done"

    def test_claim_whole_steals_expired_and_reports_lost(self, tmp_path):
        chunk = whole_chunk()
        policy = _policy(lease_ttl=1.0, max_attempts=2)
        a = ElasticScheduler(tmp_path, "scn", policy=policy, owner="a")
        a.board.claim(chunk.id, "dead")
        _backdate(a.board.lease_path(chunk.id), 50.0)
        outcome, lease = a.claim_whole(chunk)
        assert outcome == "claimed" and lease.attempt == 1
        _backdate(a.board.lease_path(chunk.id), 50.0)
        b = ElasticScheduler(tmp_path, "scn", policy=policy, owner="b")
        assert b.claim_whole(chunk)[0] == "lost"

    def test_elastic_events_are_separate_from_resilience_events(self):
        stats = ExecutionStats()
        stats.leases_claimed = 3
        stats.retries = 2
        assert stats.elastic_events() == {
            "leases_claimed": 3,
            "leases_stolen": 0,
            "leases_expired": 0,
            "duplicate_wins": 0,
            "peers_joined": 0,
            "peers_lost": 0,
        }
        assert "leases_claimed" not in stats.resilience_events()

    def test_chaos_lease_corruption_is_survived(self, tmp_path):
        plan = FaultPlan(
            seed=0,
            faults=(Fault(action="corrupt_lease", match="chunk-0000"),),
        )
        board = LeaseBoard(tmp_path / "leases" / "scn", lease_ttl=60.0)
        board.claim("chunk-0000", "previous-life")
        stats = ExecutionStats()
        scheduler = ElasticScheduler(
            tmp_path, "scn", policy=_policy(), owner="me", stats=stats, chaos=plan
        )
        chunks = build_chunks(2, 2)
        kinds = scheduler.drain(chunks, lambda chunk: None)
        assert all(kind == "done" for kind in kinds.values())


# --------------------------------------------------------------------------
# Stale-artifact hygiene.
# --------------------------------------------------------------------------


class TestSweeps:
    def test_sweep_expired_leases_is_age_bounded(self, tmp_path):
        board = LeaseBoard(tmp_path / "leases" / "scn", lease_ttl=60.0)
        board.claim("chunk-0000", "old")
        board.claim("chunk-0001", "new")
        _backdate(board.lease_path("chunk-0000"), 1000.0)
        assert sweep_expired_leases(tmp_path / "leases", older_than=600.0) == 1
        assert sweep_expired_leases(tmp_path / "missing", older_than=600.0) == 0

    def test_find_stale_artifacts_names_reasons(self, tmp_path):
        board = LeaseBoard(tmp_path / "leases" / "scn", lease_ttl=60.0)
        board.claim("chunk-0000", "dead")
        _backdate(board.lease_path("chunk-0000"), 100.0)
        (tmp_path / "workers").mkdir()
        stale_worker = tmp_path / "workers" / "w9.json"
        stale_worker.write_text("{}")
        _backdate(stale_worker, 100.0)
        quarantined = tmp_path / "cache.json.quarantined-1"
        quarantined.write_text("junk")
        reasons = dict(find_stale_artifacts(tmp_path, lease_ttl=10.0))
        assert "expired lease" in reasons[board.lease_path("chunk-0000")]
        assert "stale worker heartbeat" in reasons[stale_worker]
        assert "quarantined" in reasons[quarantined]
        # Fresh files are never flagged.
        fresh = LeaseBoard(tmp_path / "leases" / "scn", lease_ttl=60.0)
        fresh.claim("chunk-0001", "alive")
        flagged = [p for p, _ in find_stale_artifacts(tmp_path, lease_ttl=10.0)]
        assert fresh.lease_path("chunk-0001") not in flagged

    def test_sweep_stale_artifacts_dry_run_then_apply(self, tmp_path, capsys):
        stale = tmp_path / "x.lease"
        stale.write_text("{}")
        _backdate(stale, 100.0)
        entries = sweep_stale_artifacts(tmp_path, lease_ttl=10.0, apply=False)
        assert len(entries) == 1
        assert stale.exists(), "dry run must not delete"
        out = capsys.readouterr().out
        assert "would remove" in out
        sweep_stale_artifacts(tmp_path, lease_ttl=10.0, apply=True)
        assert not stale.exists()


# --------------------------------------------------------------------------
# Sibling-cache preload retry (satellite: transient read failures).
# --------------------------------------------------------------------------


def _result(label: str) -> ExperimentResult:
    return ExperimentResult(
        attack_label=label, accuracy=0.5, baseline_accuracy=0.8
    )


class TestPreloadRetry:
    def _sibling_with_entry(self, tmp_path) -> Path:
        sibling = PersistentResultCache(tmp_path / "cache.elastic-a.json")
        sibling.put("key-1", _result("x"))
        return sibling.path

    def test_transient_first_read_failure_is_retried_once(
        self, tmp_path, monkeypatch
    ):
        sibling_path = self._sibling_with_entry(tmp_path)
        cache = PersistentResultCache(tmp_path / "cache.elastic-b.json")
        original = PersistentResultCache._read_entries
        calls = {"n": 0}

        def flaky(path):
            calls["n"] += 1
            if calls["n"] == 1:
                raise CacheCorruptionError("torn read (peer mid-flush)")
            return original(path)

        monkeypatch.setattr(
            PersistentResultCache, "_read_entries", staticmethod(flaky)
        )
        monkeypatch.setattr(PersistentResultCache, "PRELOAD_RETRY_DELAY", 0.0)
        assert cache.preload(sibling_path) == 1
        assert calls["n"] == 2
        assert cache.quarantined_entries == 0

    def test_two_consecutive_failures_still_raise(self, tmp_path, monkeypatch):
        sibling_path = self._sibling_with_entry(tmp_path)
        cache = PersistentResultCache(tmp_path / "cache.elastic-b.json")

        def broken(path):
            raise CacheCorruptionError("really corrupt")

        monkeypatch.setattr(
            PersistentResultCache, "_read_entries", staticmethod(broken)
        )
        monkeypatch.setattr(PersistentResultCache, "PRELOAD_RETRY_DELAY", 0.0)
        with pytest.raises(CacheCorruptionError):
            cache.preload(sibling_path)

    def test_concurrent_flush_and_preload_never_corrupt(self, tmp_path):
        """Race regression: atomic flushes are always preloadable."""
        writer = PersistentResultCache(tmp_path / "cache.elastic-w.json")
        reader = PersistentResultCache(tmp_path / "cache.elastic-r.json")
        errors: list = []

        def keep_flushing():
            try:
                for i in range(100):
                    writer.put(f"key-{i}", _result(f"attack-{i}"))
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        thread = threading.Thread(target=keep_flushing)
        thread.start()
        try:
            for _ in range(30):
                reader.preload(writer.path)
        finally:
            thread.join()
        assert errors == []
        reader.preload(writer.path)  # final preload after the writer stopped
        assert len(reader._results) == 100


class TestOpenWorkerCache:
    def test_worker_caches_are_distinct_and_cross_preloaded(self, tmp_path):
        a = open_worker_cache(tmp_path, "w0")
        a.put("shared-key", _result("x"))
        b = open_worker_cache(tmp_path, "w1")
        assert a.path != b.path
        assert b.peek("shared-key") is not None

    def test_worker_id_is_sanitised_for_the_filesystem(self, tmp_path):
        cache = open_worker_cache(tmp_path, "host/1:weird id")
        assert cache.path.parent == tmp_path
        assert "/" not in cache.path.name and ":" not in cache.path.name
        assert " " not in cache.path.name


# --------------------------------------------------------------------------
# owns_name balance (satellite: chi-square over the library scenarios).
# --------------------------------------------------------------------------


class TestOwnsNameBalance:
    #: 95 % critical values of chi-square with df = n - 1.
    CRITICAL = {2: 3.84, 3: 5.99, 4: 7.81, 8: 14.07}

    def test_library_scenarios_spread_acceptably_across_shards(self):
        names = scenario_names()
        assert len(names) >= 10
        for count, critical in self.CRITICAL.items():
            shards = [ShardSpec(index=i, count=count) for i in range(count)]
            observed = [
                sum(1 for name in names if shard.owns_name(name))
                for shard in shards
            ]
            assert sum(observed) == len(names)  # partition, no overlap
            expected = len(names) / count
            chi2 = sum((o - expected) ** 2 / expected for o in observed)
            assert chi2 <= critical, (
                f"owns_name is imbalanced over {count} shards: "
                f"counts {observed}, chi2 {chi2:.2f} > {critical}"
            )

    def test_owns_name_matches_crc32_contract(self):
        spec = ShardSpec(index=1, count=3)
        for name in scenario_names():
            expected = zlib.crc32(name.encode("utf-8")) % 3 == 1
            assert spec.owns_name(name) == expected


# --------------------------------------------------------------------------
# Elastic merge-report rendering.
# --------------------------------------------------------------------------


class TestElasticMergeReport:
    def test_elastic_categories_render_instead_of_shard_owners(self):
        report = MergeReport(
            total=8,
            count=1,
            missing_positions=(2, 5, 6),
            unclaimed_positions=(2,),
            lost_positions=(5, 6),
        )
        text = report.describe()
        assert "3 of 8 variant(s) unresolved" in text
        assert "1 never claimed" in text
        assert "2 leased but lost" in text
        assert "shard" not in text
        assert report.unclaimed == 1 and report.lost == 2

    def test_legacy_rendering_is_unchanged_without_categories(self):
        report = MergeReport(total=4, count=2, missing_positions=(1, 3))
        assert "owned by shard(s) 1/2" in report.describe()

    def test_recovered_faults_cell_folds_elastic_counters(self):
        from repro.core.reporting import format_recovered_faults

        stolen = {
            "resilience": {"retries": 0},
            "elastic": {
                "worker": "w0",
                "leases_claimed": 2,
                "leases_expired": 1,
                "leases_stolen": 1,
                "peers_joined": 3,
                "duplicate_wins": 0,
            },
        }
        cell = format_recovered_faults(stolen)
        assert "leases_stolen=1" in cell and "leases_expired=1" in cell
        # Healthy-run markers never surface as recovered faults: worker is
        # an id string, peers_joined/leases_claimed fire on clean drains.
        assert "worker" not in cell
        assert "peers_joined" not in cell and "leases_claimed" not in cell
        clean = {"elastic": {"worker": "w0", "leases_claimed": 4}}
        assert format_recovered_faults(clean) == "-"
        assert format_recovered_faults({}) == "-"


# --------------------------------------------------------------------------
# Elastic ScenarioRunner (stub pipeline, in-process workers).
# --------------------------------------------------------------------------


@dataclass
class _StubPipeline:
    """Deterministic instant pipeline satisfying the executor protocol."""

    config: ExperimentConfig = field(default_factory=ExperimentConfig.tiny)
    baseline: float = 0.8

    def run_baseline(self) -> ExperimentResult:
        return ExperimentResult(
            attack_label="baseline",
            accuracy=self.baseline,
            baseline_accuracy=self.baseline,
        )

    def run(self, attack) -> ExperimentResult:
        change = float(getattr(attack, "threshold_change", 0.0))
        degradation = 0.9 / (1.0 + np.exp(-(change - 0.1) * 300.0))
        return ExperimentResult(
            attack_label=attack.label(),
            accuracy=self.baseline * (1.0 - degradation),
            baseline_accuracy=self.baseline,
        )


@dataclass(frozen=True)
class _stub_factory:
    config: ExperimentConfig
    engine: str = "auto"

    def __call__(self) -> _StubPipeline:
        return _StubPipeline(config=self.config)


def _grid_spec(name: str = "elastic-grid") -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        family="both_thresholds",
        grid={
            "threshold_change": tuple(
                round(v, 3) for v in np.linspace(0.01, 0.2, 6)
            )
        },
        scale="tiny",
    )


def _bisect_spec(name: str = "elastic-bisect") -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        family="both_thresholds",
        grid={"threshold_change": (0.02, 0.05, 0.1, 0.15, 0.2)},
        strategy="bisect",
        scale="tiny",
    )


class TestElasticRunner:
    def test_requires_a_workdir(self):
        with pytest.raises(ValueError, match="workdir"):
            ScenarioRunner(pipeline_factory=_stub_factory, elastic=ElasticPolicy())

    def test_is_mutually_exclusive_with_static_sharding(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ScenarioRunner(
                pipeline_factory=_stub_factory,
                elastic=ElasticPolicy(),
                workdir=tmp_path,
                shard=ShardSpec(index=0, count=2),
            )

    def test_elastic_grid_matches_a_plain_run(self, tmp_path):
        policy = _policy(chunk_size=2)
        elastic = ScenarioRunner(
            pipeline_factory=_stub_factory,
            elastic=policy,
            workdir=tmp_path,
            worker_id="wa",
        ).run(_grid_spec())
        plain = ScenarioRunner(pipeline_factory=_stub_factory).run(_grid_spec())
        assert elastic.complete
        assert np.array_equal(
            elastic.arrays["accuracies"], plain.arrays["accuracies"]
        )
        assert elastic.metrics == plain.metrics
        assert elastic.worker == "wa"
        assert elastic.leases_claimed == 3  # 6 variants / chunk_size 2
        assert elastic.leases_stolen == 0

    def test_second_worker_assembles_from_done_markers(self, tmp_path):
        cache = ResultCache()
        spec = _grid_spec()
        first = ScenarioRunner(
            pipeline_factory=_stub_factory,
            cache=cache,
            elastic=_policy(),
            workdir=tmp_path,
            worker_id="wa",
        ).run(spec)
        assert first.complete and first.executor_tasks > 0
        second = ScenarioRunner(
            pipeline_factory=_stub_factory,
            cache=cache,
            elastic=_policy(),
            workdir=tmp_path,
            worker_id="wb",
        ).run(spec)
        assert second.complete
        assert second.executor_tasks == 0, "all chunks were already done"
        assert second.leases_claimed == 0
        assert second.metrics == first.metrics

    def test_elastic_bisect_claims_and_completes(self, tmp_path):
        cache = ResultCache()
        spec = _bisect_spec()
        first = ScenarioRunner(
            pipeline_factory=_stub_factory,
            cache=cache,
            elastic=_policy(),
            workdir=tmp_path,
            worker_id="wa",
        ).run(spec)
        assert first.complete
        board = LeaseBoard(
            tmp_path / "leases" / spec.name, lease_ttl=60.0
        )
        assert board.done_path("whole").exists()
        # A second worker re-assembles from pure cache hits.
        second = ScenarioRunner(
            pipeline_factory=_stub_factory,
            cache=cache,
            elastic=_policy(),
            workdir=tmp_path,
            worker_id="wb",
        ).run(spec)
        assert second.complete
        assert second.executor_tasks == 0
        assert second.metrics == first.metrics

    def test_elastic_bisect_held_by_live_peer_is_skipped(self, tmp_path):
        spec = _bisect_spec()
        board = LeaseBoard(tmp_path / "leases" / spec.name, lease_ttl=300.0)
        board.claim("whole", "live-peer")
        result = ScenarioRunner(
            pipeline_factory=_stub_factory,
            elastic=_policy(lease_ttl=300.0),
            workdir=tmp_path,
            worker_id="wb",
        ).run(spec)
        assert result.sharded_out
        assert not result.complete

    def test_elastic_bisect_over_budget_is_lost(self, tmp_path):
        spec = _bisect_spec()
        board = LeaseBoard(tmp_path / "leases" / spec.name, lease_ttl=1.0)
        burned = Lease(
            owner="dead",
            chunk="whole",
            attempt=9,
            created_unix=time.time() - 50.0,
            heartbeat_unix=time.time() - 50.0,
        )
        _write_json_atomic(board.lease_path("whole"), burned.to_dict())
        _backdate(board.lease_path("whole"), 50.0)
        result = ScenarioRunner(
            pipeline_factory=_stub_factory,
            elastic=_policy(lease_ttl=1.0, max_attempts=2),
            workdir=tmp_path,
            worker_id="wb",
        ).run(spec)
        assert not result.complete
        assert result.lost_positions == [0]


# --------------------------------------------------------------------------
# CLI: kill a cooperating worker, survivors stay bit-identical.
# --------------------------------------------------------------------------


SCENARIO = "separate_domain_droop"  # 2 variants at any scale


def _digests(path: Path) -> dict:
    with open(path) as handle:
        document = json.load(handle)
    return {name: entry["sha256"] for name, entry in document["arrays"].items()}


def _elastic_argv(out: Path, worker: str, *extra: str) -> list:
    return [
        sys.executable,
        "-m",
        "repro",
        "scenarios",
        "run",
        SCENARIO,
        "--scale",
        "tiny",
        "--out",
        str(out),
        "--elastic",
        "--worker-id",
        worker,
        "--lease-ttl",
        "3",
        "--chunk-size",
        "1",
        "--quiet",
        *extra,
    ]


def _subprocess_env() -> dict:
    env = os.environ.copy()
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestElasticCLIKillContract:
    @pytest.fixture(scope="class")
    def reference_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("reference")
        rc = main(
            [
                "scenarios",
                "run",
                SCENARIO,
                "--scale",
                "tiny",
                "--out",
                str(out),
                "--quiet",
            ]
        )
        assert rc == 0
        return out

    def test_killed_worker_leaves_a_stale_lease_survivors_recover(
        self, reference_dir, tmp_path
    ):
        out = tmp_path / "elastic"
        out.mkdir()
        plan = tmp_path / "kill-w1.json"
        plan.write_text(
            json.dumps(
                {
                    "seed": 0,
                    "faults": [
                        {
                            "action": "kill_process",
                            "match": "w1:",
                            "probability": 1.0,
                        }
                    ],
                }
            )
        )
        env = _subprocess_env()
        # The doomed worker claims its first chunk, then SIGKILLs itself —
        # exactly the stale-lease footprint of a real crash.
        doomed = subprocess.run(
            _elastic_argv(out, "w1", "--chaos", str(plan)),
            env=env,
            capture_output=True,
            timeout=300,
        )
        assert doomed.returncode in (-9, 137), doomed.stderr.decode()
        leases = out / "leases" / SCENARIO
        assert list(leases.glob("*.lease")), "the crash must leave its lease"
        # A surviving worker steals the expired lease and finishes the
        # campaign — the merged artifact is bit-identical to a clean run.
        survivor = subprocess.run(
            _elastic_argv(out, "w0"),
            env=env,
            capture_output=True,
            timeout=300,
        )
        assert survivor.returncode == 0, survivor.stdout.decode()
        merged = out / f"scenario-{SCENARIO}.json"
        assert merged.exists()
        assert _digests(merged) == _digests(
            reference_dir / f"scenario-{SCENARIO}.json"
        ), "the recovered campaign must be bit-identical to a clean run"
        with open(merged) as handle:
            provenance = json.load(handle)["provenance"]
        elastic = provenance["elastic"]
        assert elastic["leases_stolen"] >= 1, "w0 must have stolen w1's lease"
        assert elastic["worker"] == "w0"
        # A worker joining after the drain finished re-assembles the same
        # artifact from the done markers and shared caches, running nothing.
        late = subprocess.run(
            _elastic_argv(out, "w2"),
            env=env,
            capture_output=True,
            timeout=300,
        )
        assert late.returncode == 0, late.stdout.decode()
        assert b"0 pipeline runs" in late.stdout
        assert _digests(merged) == _digests(
            reference_dir / f"scenario-{SCENARIO}.json"
        )

    def test_elastic_and_shard_flags_conflict(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "scenarios",
                    "run",
                    SCENARIO,
                    "--elastic",
                    "--shard",
                    "0/2",
                    "--out",
                    str(tmp_path),
                ]
            )


class TestScenariosCleanCLI:
    def test_dry_run_lists_and_apply_deletes(self, tmp_path, capsys):
        stale = tmp_path / "chunk-0000.lease"
        stale.write_text("{}")
        _backdate(stale, 1000.0)
        rc = main(["scenarios", "clean", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "would remove" in out and "re-run with --apply" in out
        assert stale.exists()
        rc = main(["scenarios", "clean", str(tmp_path), "--apply"])
        assert rc == 0
        assert "removed" in capsys.readouterr().out
        assert not stale.exists()

    def test_clean_of_a_tidy_directory_reports_nothing(self, tmp_path, capsys):
        rc = main(["scenarios", "clean", str(tmp_path)])
        assert rc == 0
        assert "nothing stale" in capsys.readouterr().out

    def test_clean_of_a_missing_directory_fails(self, tmp_path, capsys):
        rc = main(["scenarios", "clean", str(tmp_path / "absent")])
        assert rc == 1
