"""Tests for the network engine, monitors and the Diehl&Cook model."""

import numpy as np
import pytest

from repro.snn import (
    Connection,
    DiehlAndCook2015,
    DiehlAndCookParameters,
    InputNodes,
    LIFNodes,
    Network,
    SpikeMonitor,
    StateMonitor,
)
from repro.snn.models import EXCITATORY_LAYER, INHIBITORY_LAYER, INPUT_LAYER


def simple_network(weight=50.0):
    """One input neuron driving one LIF neuron with a strong synapse."""
    network = Network()
    source = network.add_layer("in", InputNodes(1))
    target = network.add_layer("out", LIFNodes(1))
    network.add_connection("in", "out", Connection(source, target, w=np.array([[weight]])))
    network.add_monitor("out_spikes", SpikeMonitor("out"))
    network.add_monitor("out_v", StateMonitor("out", "v"))
    return network


class TestNetworkEngine:
    def test_spikes_propagate_through_connection(self):
        network = simple_network()
        inputs = {"in": np.ones((5, 1), dtype=bool)}
        network.run(inputs)
        raster = network.monitors["out_spikes"].get()
        assert raster.shape == (5, 1)
        assert raster.sum() >= 1

    def test_weak_weight_does_not_fire(self):
        network = simple_network(weight=0.5)
        network.run({"in": np.ones((5, 1), dtype=bool)})
        assert network.monitors["out_spikes"].get().sum() == 0

    def test_state_monitor_records_membrane(self):
        network = simple_network()
        network.run({"in": np.ones((3, 1), dtype=bool)})
        trace = network.monitors["out_v"].get()
        assert trace.shape == (3, 1)

    def test_run_infers_time_steps_and_validates_shapes(self):
        network = simple_network()
        with pytest.raises(ValueError):
            network.run({"in": np.ones((5, 2), dtype=bool)})
        with pytest.raises(ValueError):
            network.run({}, time_steps=None)
        with pytest.raises(KeyError):
            network.run({"missing": np.ones((5, 1), dtype=bool)})

    def test_duplicate_layer_rejected(self):
        network = Network()
        network.add_layer("a", InputNodes(1))
        with pytest.raises(ValueError):
            network.add_layer("a", InputNodes(1))

    def test_connection_layer_consistency_enforced(self):
        network = Network()
        a = network.add_layer("a", InputNodes(1))
        b = network.add_layer("b", LIFNodes(1))
        other = LIFNodes(1)
        with pytest.raises(ValueError):
            network.add_connection("a", "b", Connection(a, other, w=np.ones((1, 1))))
        with pytest.raises(KeyError):
            network.add_connection("a", "c", Connection(a, b, w=np.ones((1, 1))))

    def test_monitor_requires_known_layer(self):
        network = Network()
        with pytest.raises(KeyError):
            network.add_monitor("m", SpikeMonitor("nope"))

    def test_set_learning_propagates_to_layers(self):
        network = simple_network()
        network.set_learning(False)
        assert all(not nodes.learning for nodes in network.layers.values())

    def test_reset_monitors_and_state(self):
        network = simple_network()
        network.run({"in": np.ones((3, 1), dtype=bool)})
        network.reset_monitors()
        network.reset_state_variables()
        assert network.monitors["out_spikes"].get().size == 0
        assert network.layers["out"].v[0] == network.layers["out"].rest


class TestDiehlAndCook2015:
    @pytest.fixture(scope="class")
    def network(self):
        return DiehlAndCook2015(DiehlAndCookParameters(n_inputs=64, n_neurons=20), rng=0)

    def test_architecture(self, network):
        assert set(network.layers) == {INPUT_LAYER, EXCITATORY_LAYER, INHIBITORY_LAYER}
        assert network.input_layer.n == 64
        assert network.excitatory_layer.n == 20
        assert network.inhibitory_layer.n == 20

    def test_connection_topologies(self, network):
        exc_inh = network.connections[(EXCITATORY_LAYER, INHIBITORY_LAYER)].w
        inh_exc = network.connections[(INHIBITORY_LAYER, EXCITATORY_LAYER)].w
        assert np.allclose(exc_inh, np.diag(np.diag(exc_inh)))  # one-to-one
        assert np.allclose(np.diag(inh_exc), 0.0)  # no self inhibition
        assert inh_exc.max() <= 0.0

    def test_input_weights_bounded_and_normalisable(self, network):
        connection = network.input_connection
        assert connection.w.min() >= 0.0
        connection.normalize()
        assert np.allclose(connection.w.sum(axis=0), network.parameters.norm)

    def test_present_returns_spike_counts(self):
        network = DiehlAndCook2015(DiehlAndCookParameters(n_inputs=16, n_neurons=10), rng=1)
        raster = np.random.default_rng(0).random((30, 16)) < 0.3
        counts = network.present(raster, learning=True)
        assert counts.shape == (10,)
        assert counts.dtype.kind in "iu"

    def test_learning_changes_input_weights(self):
        network = DiehlAndCook2015(DiehlAndCookParameters(n_inputs=16, n_neurons=10), rng=1)
        before = network.input_connection.w.copy()
        raster = np.random.default_rng(0).random((50, 16)) < 0.5
        network.present(raster, learning=True)
        assert not np.allclose(before, network.input_connection.w)

    def test_evaluation_mode_freezes_weights_and_theta(self):
        network = DiehlAndCook2015(DiehlAndCookParameters(n_inputs=16, n_neurons=10), rng=1)
        raster = np.random.default_rng(0).random((50, 16)) < 0.5
        network.present(raster, learning=True)
        weights = network.input_connection.w.copy()
        theta = network.excitatory_layer.theta.copy()
        network.present(raster, learning=False)
        assert np.allclose(weights, network.input_connection.w)
        assert np.allclose(theta, network.excitatory_layer.theta)

    def test_inhibition_limits_simultaneous_winners(self):
        parameters = DiehlAndCookParameters(n_inputs=16, n_neurons=10, norm=140.0)
        network = DiehlAndCook2015(parameters, rng=1)
        raster = np.random.default_rng(0).random((60, 16)) < 0.6
        counts = network.present(raster, learning=False)
        # Lateral inhibition should keep most neurons quiet for one pattern.
        assert (counts > 0).sum() <= 6
