"""Fig. 10c & Sec. V overheads — dummy-neuron VFI detection and defense costs.

Fig. 10c: the dummy neuron's output spike count deviates by ≥10 % from the
calibration count when the local supply is glitched by ±20 %, for both
neuron flavours.

The overhead table reproduces the paper's reported defense costs (robust
driver 3 % power, up-sized Axon-Hillock 25 % power, comparator 11 % power,
bandgap 65 % area at 200 neurons, dummy neuron ~1 %).

Thin wrappers over the ``fig10c``/``overheads`` registry entries
(``python -m repro run fig10c overheads``).
"""

from repro.figures import get_figure


def test_fig10c_dummy_neuron_detection(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("fig10c").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    # The +/-20 % supply faults must be flagged for both neuron flavours, and
    # the nominal supply must never be flagged.
    for prefix in ("ah", "if"):
        assert result.metrics[f"{prefix}_detects_corners"] == 1.0
        assert result.metrics[f"{prefix}_false_alarm_at_nominal"] == 0.0


def test_defense_overheads(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("overheads").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    assert result.metrics["robust_current_driver_power"] == 0.03
    assert result.metrics["axon_hillock_sizing_power"] == 0.25
    assert result.metrics["comparator_neuron_power"] == 0.11
    assert result.metrics["bandgap_threshold_area"] == 0.65
    assert result.metrics["dummy_neuron_detector_power"] <= 0.01
