"""Tests for the synthetic digit dataset and loaders."""

import numpy as np
import pytest

from repro.datasets import (
    DIGIT_SKELETONS,
    DataLoader,
    SyntheticDigits,
    intensity_scale,
    normalize_unit,
    render_digit,
    threshold_binarize,
    train_test_split,
)


class TestRenderDigit:
    def test_shape_and_intensity_range(self):
        image = render_digit(3)
        assert image.shape == (28, 28)
        assert image.min() >= 0.0 and image.max() <= 255.0
        assert image.max() == pytest.approx(255.0)

    def test_all_ten_classes_have_skeletons_and_render(self):
        assert set(DIGIT_SKELETONS) == set(range(10))
        for digit in range(10):
            assert render_digit(digit).sum() > 0

    def test_invalid_digit_rejected(self):
        with pytest.raises(ValueError):
            render_digit(10)

    def test_classes_are_visually_distinct(self):
        images = [render_digit(d) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                difference = np.abs(images[i] - images[j]).mean()
                assert difference > 5.0, f"digits {i} and {j} look identical"

    def test_jitter_moves_pixels(self):
        base = render_digit(5)
        shifted = render_digit(5, shift=(0.1, 0.0))
        rotated = render_digit(5, rotation_deg=15.0)
        assert not np.allclose(base, shifted)
        assert not np.allclose(base, rotated)

    def test_noise_is_reproducible_with_seed(self):
        a = render_digit(7, noise_amplitude=10.0, rng=3)
        b = render_digit(7, noise_amplitude=10.0, rng=3)
        assert np.array_equal(a, b)

    def test_custom_size(self):
        assert render_digit(1, size=14).shape == (14, 14)


class TestSyntheticDigits:
    def test_deterministic_given_seed(self):
        a = SyntheticDigits(n_samples=20, seed=5)
        b = SyntheticDigits(n_samples=20, seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = SyntheticDigits(n_samples=20, seed=5)
        b = SyntheticDigits(n_samples=20, seed=6)
        assert not np.array_equal(a.images, b.images)

    def test_classes_balanced(self):
        dataset = SyntheticDigits(n_samples=100, seed=0)
        assert np.all(dataset.class_counts() == 10)

    def test_indexing_and_flattening(self):
        dataset = SyntheticDigits(n_samples=12, seed=0)
        image, label = dataset[3]
        assert image.shape == (28, 28)
        assert 0 <= label <= 9
        assert dataset.flattened().shape == (12, 784)
        assert len(dataset) == 12

    def test_no_jitter_mode_is_canonical(self):
        dataset = SyntheticDigits(n_samples=10, seed=0, jitter=False)
        reference = {d: render_digit(d) for d in range(10)}
        for image, label in zip(dataset.images, dataset.labels):
            assert np.allclose(image, reference[label])


class TestTransforms:
    def test_intensity_scale_clips(self):
        image = np.array([[100.0, 200.0]])
        assert np.allclose(intensity_scale(image, 2.0), [[200.0, 255.0]])
        with pytest.raises(ValueError):
            intensity_scale(image, 0.0)

    def test_normalize_unit(self):
        assert normalize_unit(np.array([0.0, 127.5, 255.0])).max() == 1.0
        assert np.allclose(normalize_unit(np.zeros(4)), 0.0)

    def test_threshold_binarize(self):
        binary = threshold_binarize(np.array([10.0, 200.0]))
        assert np.allclose(binary, [0.0, 255.0])


class TestLoaders:
    def test_train_test_split_sizes_and_disjoint(self):
        dataset = SyntheticDigits(n_samples=50, seed=0)
        tr_x, tr_y, te_x, te_y = train_test_split(
            dataset.flattened(), dataset.labels, test_fraction=0.2, rng=0
        )
        assert len(te_x) == 10 and len(tr_x) == 40
        assert len(tr_y) == 40 and len(te_y) == 10

    def test_train_test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((3, 4)), np.zeros(2))

    def test_dataloader_batches_cover_dataset(self):
        dataset = SyntheticDigits(n_samples=25, seed=0)
        loader = DataLoader(dataset.flattened(), dataset.labels, batch_size=8, rng=0)
        batches = list(loader)
        assert len(loader) == 4
        assert sum(len(y) for _, y in batches) == 25

    def test_dataloader_shuffle_reproducible(self):
        dataset = SyntheticDigits(n_samples=16, seed=0)
        loader_a = DataLoader(dataset.flattened(), dataset.labels, batch_size=4, rng=3)
        loader_b = DataLoader(dataset.flattened(), dataset.labels, batch_size=4, rng=3)
        for (xa, ya), (xb, yb) in zip(loader_a, loader_b):
            assert np.array_equal(xa, xb) and np.array_equal(ya, yb)

    def test_dataloader_validation(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((3, 4)), np.zeros(2))
