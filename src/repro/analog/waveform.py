"""Waveform post-processing.

The figure-level analyses in the paper are all statements about waveforms:
when does the membrane voltage cross the threshold, how often does the output
spike, how does the time-to-first-spike move when the supply voltage changes.
:class:`Waveform` wraps a (time, value) trace with those measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class Waveform:
    """A sampled time-domain trace."""

    time: np.ndarray
    values: np.ndarray
    name: str = "waveform"

    def __post_init__(self) -> None:
        self.time = np.asarray(self.time, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.time.shape != self.values.shape:
            raise ValueError(
                f"time and values must have the same shape, got {self.time.shape} "
                f"and {self.values.shape}"
            )
        if self.time.ndim != 1:
            raise ValueError("waveforms must be one-dimensional")
        if len(self.time) >= 2 and np.any(np.diff(self.time) <= 0):
            raise ValueError("waveform time axis must be strictly increasing")

    # --------------------------------------------------------------- summaries
    def __len__(self) -> int:
        return len(self.time)

    @property
    def duration(self) -> float:
        """Total trace duration in seconds."""
        if len(self.time) < 2:
            return 0.0
        return float(self.time[-1] - self.time[0])

    def maximum(self) -> float:
        """Maximum sample value."""
        return float(np.max(self.values))

    def minimum(self) -> float:
        """Minimum sample value."""
        return float(np.min(self.values))

    def peak_to_peak(self) -> float:
        """Max minus min."""
        return self.maximum() - self.minimum()

    def mean(self) -> float:
        """Time-weighted mean value (trapezoidal)."""
        if len(self.time) < 2:
            return float(self.values[0]) if len(self.values) else 0.0
        return float(np.trapezoid(self.values, self.time) / self.duration)

    def value_at(self, time: float) -> float:
        """Linearly interpolated value at ``time``."""
        return float(np.interp(time, self.time, self.values))

    def slice(self, start: float, stop: float) -> "Waveform":
        """Return the sub-waveform with ``start <= t <= stop``."""
        mask = (self.time >= start) & (self.time <= stop)
        return Waveform(self.time[mask], self.values[mask], name=self.name)

    # --------------------------------------------------------------- crossings
    def threshold_crossings(
        self, level: float, *, direction: str = "rising"
    ) -> np.ndarray:
        """Interpolated times at which the trace crosses ``level``.

        ``direction`` is ``"rising"``, ``"falling"`` or ``"both"``.
        """
        return threshold_crossings(self.time, self.values, level, direction=direction)

    def time_to_first_crossing(
        self, level: float, *, direction: str = "rising"
    ) -> Optional[float]:
        """Time of the first crossing of ``level`` (None if it never crosses)."""
        crossings = self.threshold_crossings(level, direction=direction)
        if len(crossings) == 0:
            return None
        return float(crossings[0])

    # ------------------------------------------------------------------ spikes
    def detect_spikes(
        self, threshold: float, *, min_separation: float = 0.0
    ) -> np.ndarray:
        """Times of rising threshold crossings, merged within ``min_separation``."""
        return detect_spikes(
            self.time, self.values, threshold, min_separation=min_separation
        )

    def spike_count(self, threshold: float, *, min_separation: float = 0.0) -> int:
        """Number of detected spikes."""
        return int(len(self.detect_spikes(threshold, min_separation=min_separation)))

    def spike_rate(self, threshold: float, *, min_separation: float = 0.0) -> float:
        """Average spike rate (spikes per second) over the trace duration."""
        if self.duration <= 0:
            return 0.0
        return self.spike_count(threshold, min_separation=min_separation) / self.duration

    def inter_spike_intervals(
        self, threshold: float, *, min_separation: float = 0.0
    ) -> np.ndarray:
        """Differences between consecutive spike times."""
        spikes = self.detect_spikes(threshold, min_separation=min_separation)
        return np.diff(spikes)

    # ------------------------------------------------------------- edge timing
    def rise_time(self, low_frac: float = 0.1, high_frac: float = 0.9) -> Optional[float]:
        """10 %-90 % (by default) rise time of the first full swing."""
        low = self.minimum() + low_frac * self.peak_to_peak()
        high = self.minimum() + high_frac * self.peak_to_peak()
        t_low = self.time_to_first_crossing(low, direction="rising")
        t_high = self.time_to_first_crossing(high, direction="rising")
        if t_low is None or t_high is None or t_high < t_low:
            return None
        return t_high - t_low


def threshold_crossings(
    time: Sequence[float],
    values: Sequence[float],
    level: float,
    *,
    direction: str = "rising",
) -> np.ndarray:
    """Interpolated times at which ``values`` crosses ``level``."""
    if direction not in ("rising", "falling", "both"):
        raise ValueError("direction must be 'rising', 'falling' or 'both'")
    time = np.asarray(time, dtype=float)
    values = np.asarray(values, dtype=float)
    above = values >= level
    changes = np.diff(above.astype(int))
    crossings: List[float] = []
    for idx in np.nonzero(changes != 0)[0]:
        rising = changes[idx] > 0
        if direction == "rising" and not rising:
            continue
        if direction == "falling" and rising:
            continue
        v0, v1 = values[idx], values[idx + 1]
        t0, t1 = time[idx], time[idx + 1]
        if v1 == v0:
            crossings.append(float(t1))
        else:
            frac = (level - v0) / (v1 - v0)
            crossings.append(float(t0 + frac * (t1 - t0)))
    return np.asarray(crossings)


def detect_spikes(
    time: Sequence[float],
    values: Sequence[float],
    threshold: float,
    *,
    min_separation: float = 0.0,
) -> np.ndarray:
    """Spike times defined as rising crossings of ``threshold``.

    Crossings closer together than ``min_separation`` are merged into one
    spike (keeps noisy re-crossings of the threshold from double counting).
    """
    raw = threshold_crossings(time, values, threshold, direction="rising")
    if min_separation <= 0 or len(raw) == 0:
        return raw
    kept = [raw[0]]
    for t in raw[1:]:
        if t - kept[-1] >= min_separation:
            kept.append(t)
    return np.asarray(kept)
