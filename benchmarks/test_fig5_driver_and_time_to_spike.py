"""Fig. 5b & 5c — driver amplitude vs VDD and time-to-spike vs amplitude.

Fig. 5b: the current-mirror driver's output amplitude across the 0.8-1.2 V
supply range (paper: 136 nA → 264 nA, i.e. −32 %/+32 %).

Fig. 5c: the change in time-to-spike of both neurons when the input amplitude
is corrupted over that range (paper: AH −24.7 %/+53.7 %, I&F −6.7 %/+14.5 %).
"""

import numpy as np

from repro.circuits import amplitude_vs_vdd
from repro.neurons import AxonHillockModel, CurrentDriverModel, IFAmplifierModel
from repro.utils.tables import format_table

VDD_VALUES = np.array([0.8, 0.9, 1.0, 1.1, 1.2])


def run_fig5b():
    circuit_amplitudes = amplitude_vs_vdd(VDD_VALUES)
    model_amplitudes = CurrentDriverModel().amplitude_vs_vdd(VDD_VALUES)
    return circuit_amplitudes, model_amplitudes


def run_fig5c():
    driver = CurrentDriverModel()
    axon_hillock = AxonHillockModel()
    if_neuron = IFAmplifierModel()
    base_ah = axon_hillock.time_to_first_spike(driver.nominal_amplitude)
    base_if = if_neuron.inter_spike_interval(driver.nominal_amplitude)
    rows = []
    for vdd in VDD_VALUES:
        amplitude = driver.amplitude(vdd)
        ah_change = (axon_hillock.time_to_first_spike(amplitude) - base_ah) / base_ah
        if_change = (if_neuron.inter_spike_interval(amplitude) - base_if) / base_if
        rows.append((vdd, amplitude * 1e9, ah_change * 100, if_change * 100))
    return rows


def test_fig5b_driver_amplitude_vs_vdd(benchmark, baseline_accuracy):
    circuit_amps, model_amps = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)
    rows = [
        (vdd, c * 1e9, m * 1e9, (c / circuit_amps[2] - 1) * 100)
        for vdd, c, m in zip(VDD_VALUES, circuit_amps, model_amps)
    ]
    print(
        format_table(
            ["VDD (V)", "circuit amplitude (nA)", "model amplitude (nA)", "change (%)"],
            rows,
            title="Fig. 5b — driver output amplitude vs VDD",
        )
    )
    nominal = circuit_amps[2]
    assert (circuit_amps[0] - nominal) / nominal < -0.25
    assert (circuit_amps[-1] - nominal) / nominal > 0.25


def test_fig5c_time_to_spike_vs_amplitude(benchmark):
    rows = benchmark.pedantic(run_fig5c, rounds=1, iterations=1)
    print(
        format_table(
            ["VDD (V)", "Iin (nA)", "AH time-to-spike change (%)", "I&F period change (%)"],
            rows,
            title="Fig. 5c — time-to-spike vs input amplitude",
        )
    )
    by_vdd = {row[0]: row for row in rows}
    # Paper: AH slows by ~54 % at 0.8 V and speeds up by ~25 % at 1.2 V;
    # the I&F neuron is several times less sensitive.
    assert 25 < by_vdd[0.8][2] < 80
    assert -35 < by_vdd[1.2][2] < -15
    assert abs(by_vdd[0.8][3]) < abs(by_vdd[0.8][2]) / 2
    assert abs(by_vdd[1.2][3]) < abs(by_vdd[1.2][2]) / 2
