"""Tests for the declarative scenario subsystem (ISSUE 5).

Covers: spec round-trips (dict/JSON/YAML) with strict validation errors,
variant expansion (grids, defenses, composites), deterministic sharding,
the adaptive bisection strategy against a dense-grid reference on a
Fig. 8-shaped collapse (with the <= 25 % pipeline-run bound), and the CLI's
shard/resume path producing bit-identical merged artifacts vs an unsharded
run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.attacks.attacks import (
    Attack2ExcitatoryThreshold,
    Attack3InhibitoryThreshold,
    CompositeAttack,
)
from repro.cli import main
from repro.core import ExperimentConfig
from repro.core.results import ExperimentResult
from repro.exec.shard import FULL, ShardSpec
from repro.scenarios import (
    BisectionSettings,
    BisectionStrategy,
    CompositeScenario,
    ScenarioRunner,
    ScenarioSpec,
    dense_collapse_index,
    get_scenario,
    iter_scenarios,
    load_scenario_file,
    scenario_names,
)
from repro.store import load_scenario_result

# --------------------------------------------------------------------------
# Spec round-trips and validation.
# --------------------------------------------------------------------------


def _spec_document() -> dict:
    return {
        "name": "rt",
        "family": "layer_threshold",
        "title": "round trip",
        "description": "spec used by the round-trip tests",
        "tags": ["attack"],
        "fixed": {"layer": "inhibitory"},
        "grid": {"threshold_change": [0.1, 0.2], "fraction": [0.5, 1.0]},
        "strategy": "grid",
        "defenses": ["sizing32"],
        "engine": "auto",
        "scale": "tiny",
    }


class TestSpecRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        document = _spec_document()
        spec = ScenarioSpec.from_dict(document)
        assert spec.to_dict() == document
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps([_spec_document()]))
        (spec,) = load_scenario_file(path)
        assert spec.name == "rt"
        assert spec.grid["threshold_change"] == (0.1, 0.2)
        assert spec.to_dict() == _spec_document()

    def test_yaml_file_round_trip(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(_spec_document()))
        (spec,) = load_scenario_file(path)
        assert spec == ScenarioSpec.from_dict(_spec_document())

    def test_bisect_search_round_trips(self):
        document = {
            "name": "bs",
            "family": "both_thresholds",
            "grid": {"threshold_change": [0.05, 0.1, 0.2]},
            "strategy": "bisect",
            "search": {"target_degradation": 0.4, "parameter": None},
        }
        spec = ScenarioSpec.from_dict(document)
        # The swept parameter is resolved during validation.
        assert spec.search.parameter == "threshold_change"
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec


class TestSpecValidation:
    def test_unknown_top_level_field_is_rejected(self):
        document = _spec_document()
        document["grids"] = document.pop("grid")
        with pytest.raises(ValueError, match="unknown scenario field.*grids"):
            ScenarioSpec.from_dict(document)

    def test_unknown_family_is_rejected(self):
        with pytest.raises(ValueError, match="unknown attack family"):
            ScenarioSpec(name="x", family="emp", grid={"vdd": (0.8,)})

    def test_unknown_grid_parameter_is_rejected(self):
        with pytest.raises(ValueError, match="unknown grid parameter.*voltage"):
            ScenarioSpec(name="x", family="global_vdd", grid={"voltage": (0.8,)})

    def test_empty_grid_is_rejected(self):
        with pytest.raises(ValueError, match="sweeps nothing"):
            ScenarioSpec(name="x", family="global_vdd", grid={})

    def test_empty_value_list_is_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            ScenarioSpec(name="x", family="global_vdd", grid={"vdd": ()})

    def test_non_numeric_values_are_rejected(self):
        with pytest.raises(ValueError, match="must be numeric"):
            ScenarioSpec(name="x", family="global_vdd", grid={"vdd": ("low",)})

    def test_duplicate_values_are_rejected(self):
        with pytest.raises(ValueError, match="repeats values"):
            ScenarioSpec(name="x", family="global_vdd", grid={"vdd": (0.8, 0.8)})

    def test_fixed_grid_overlap_is_rejected(self):
        with pytest.raises(ValueError, match="both fixed and grid"):
            ScenarioSpec(
                name="x",
                family="layer_threshold",
                fixed={"threshold_change": 0.1},
                grid={"threshold_change": (0.2,)},
            )

    def test_bisect_needs_exactly_one_swept_parameter(self):
        with pytest.raises(ValueError, match="exactly one swept"):
            ScenarioSpec(
                name="x",
                family="layer_threshold",
                grid={"threshold_change": (0.1, 0.2), "fraction": (0.5, 1.0)},
                strategy="bisect",
            )

    def test_unknown_defense_is_rejected(self):
        with pytest.raises(ValueError, match="unknown defense.*forcefield"):
            ScenarioSpec(
                name="x",
                family="both_thresholds",
                grid={"threshold_change": (0.1,)},
                defenses=("forcefield",),
            )

    def test_missing_required_fields_are_named(self):
        with pytest.raises(ValueError, match="missing required field.*family"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_bisect_rejects_non_monotone_candidates(self):
        with pytest.raises(ValueError, match="strictly monotone"):
            ScenarioSpec(
                name="x",
                family="both_thresholds",
                grid={"threshold_change": (0.05, 0.2, 0.1)},
                strategy="bisect",
            )

    def test_bisect_rejects_defenses(self):
        with pytest.raises(ValueError, match="defenses cannot be co-evaluated"):
            ScenarioSpec(
                name="x",
                family="both_thresholds",
                grid={"threshold_change": (0.05, 0.1, 0.2)},
                strategy="bisect",
                defenses=("sizing32",),
            )

    @pytest.mark.parametrize("name", ["../evil", "a/b", "a b", ".hidden", ""])
    def test_unsafe_names_are_rejected(self, name):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(
                name=name, family="global_vdd", grid={"vdd": (0.8,)}
            )

    def test_scalar_spellings_are_normalised_not_char_split(self):
        spec = ScenarioSpec(
            name="scalars",
            family="layer_threshold",
            tags="attack",
            fixed={"layer": "inhibitory"},
            grid={"threshold_change": 0.2, "selection": "contiguous"},
        )
        assert spec.tags == ("attack",)
        assert spec.grid["threshold_change"] == (0.2,)
        assert spec.grid["selection"] == ("contiguous",)
        assert len(spec.variants()) == 1

    def test_non_iterable_grid_value_is_rejected_cleanly(self):
        with pytest.raises(ValueError, match="expected a value or list"):
            ScenarioSpec(
                name="x", family="global_vdd", grid={"vdd": None}
            )

    def test_non_numeric_search_target_is_rejected_cleanly(self):
        with pytest.raises(ValueError, match="must be a number"):
            ScenarioSpec.from_dict(
                {
                    "name": "x",
                    "family": "both_thresholds",
                    "grid": {"threshold_change": [0.1, 0.2]},
                    "strategy": "bisect",
                    "search": {"target_degradation": "half"},
                }
            )

    def test_missing_primary_parameter_is_rejected_before_training(self):
        with pytest.raises(ValueError, match="requires parameter 'threshold_change'"):
            ScenarioSpec(
                name="x",
                family="layer_threshold",
                grid={"fraction": (0.5, 1.0)},
            )

    def test_non_numeric_fixed_value_is_rejected(self):
        with pytest.raises(ValueError, match="fixed parameter 'threshold_change'"):
            ScenarioSpec(
                name="x",
                family="layer_threshold",
                fixed={"threshold_change": "big"},
                grid={"fraction": (0.5, 1.0)},
            )

    def test_bisect_accepts_descending_candidates(self):
        spec = ScenarioSpec(
            name="x",
            family="global_vdd",
            grid={"vdd": (0.95, 0.9, 0.85)},
            strategy="bisect",
        )
        assert spec.search.parameter == "vdd"

    def test_unknown_search_field_is_rejected(self):
        with pytest.raises(ValueError, match="unknown search field"):
            ScenarioSpec.from_dict(
                {
                    "name": "x",
                    "family": "both_thresholds",
                    "grid": {"threshold_change": [0.1]},
                    "strategy": "bisect",
                    "search": {"target": 0.5},
                }
            )


class TestVariantExpansion:
    def test_grid_product_order_and_count(self):
        spec = ScenarioSpec.from_dict(_spec_document())
        undefended = [v for v in spec.variants() if not v.defense]
        assert len(undefended) == 4
        params = [dict(v.params) for v in undefended]
        # Last declared parameter varies fastest.
        assert [p["fraction"] for p in params] == [0.5, 1.0, 0.5, 1.0]
        assert [p["threshold_change"] for p in params] == [0.1, 0.1, 0.2, 0.2]
        assert all(
            isinstance(v.attack, Attack3InhibitoryThreshold) for v in undefended
        )

    def test_defended_variants_scale_the_primary_parameter(self):
        spec = ScenarioSpec.from_dict(_spec_document())
        variants = spec.variants()
        defended = [v for v in variants if v.defense == "sizing32"]
        assert len(defended) == 4
        for v in defended:
            assert 0.0 < v.defense_factor < 1.0
        undefended = [v for v in variants if not v.defense]
        for raw, shielded in zip(undefended, defended):
            raw_change = dict(raw.params)["threshold_change"]
            residual = dict(shielded.params)["threshold_change"]
            assert residual == pytest.approx(raw_change * shielded.defense_factor)

    def test_swept_categorical_axes_disambiguate_labels(self):
        spec = ScenarioSpec(
            name="sel",
            family="layer_threshold",
            fixed={"layer": "inhibitory", "threshold_change": 0.2},
            grid={"selection": ("random", "contiguous"), "fraction": (0.5, 1.0)},
        )
        labels = [variant.label for variant in spec.variants()]
        assert len(set(labels)) == len(labels)
        assert any("selection=contiguous" in label for label in labels)

    def test_layer_family_builds_the_matching_attack_class(self):
        spec = ScenarioSpec(
            name="layers",
            family="layer_threshold",
            grid={"layer": ("excitatory", "inhibitory"), "threshold_change": (0.2,)},
        )
        attacks = [v.attack for v in spec.variants()]
        assert isinstance(attacks[0], Attack2ExcitatoryThreshold)
        assert isinstance(attacks[1], Attack3InhibitoryThreshold)


class TestCompositeScenario:
    def _members(self):
        return (
            ScenarioSpec(
                name="m.gain", family="input_gain", grid={"theta_change": (-0.2, -0.1)}
            ),
            ScenarioSpec(
                name="m.thr",
                family="both_thresholds",
                grid={"threshold_change": (-0.2, 0.2)},
            ),
        )

    def test_product_fuses_composite_attacks(self):
        composite = CompositeScenario(
            name="prod", members=self._members(), mode="product"
        )
        variants = composite.variants()
        assert len(variants) == 4
        for variant in variants:
            assert isinstance(variant.attack, CompositeAttack)
            assert len(variant.attack.attacks) == 2
        labels = [variant.attack.label() for variant in variants]
        assert len(set(labels)) == 4
        assert "+" in labels[0]

    def test_sequence_concatenates_member_variants(self):
        composite = CompositeScenario(
            name="seq", members=self._members(), mode="sequence"
        )
        variants = composite.variants()
        assert len(variants) == 4
        assert not any(isinstance(v.attack, CompositeAttack) for v in variants)
        assert all(key.startswith("m.") for key, _ in variants[0].params)

    def test_composite_needs_two_members(self):
        with pytest.raises(ValueError, match=">= 2 members"):
            CompositeScenario(name="solo", members=self._members()[:1])

    @pytest.mark.parametrize("mode", ["product", "sequence"])
    def test_composites_reject_bisect_members_in_any_mode(self, mode):
        bisect_member = ScenarioSpec(
            name="m.b",
            family="both_thresholds",
            grid={"threshold_change": (0.1, 0.2)},
            strategy="bisect",
        )
        with pytest.raises(ValueError, match="grid strategy"):
            CompositeScenario(
                name="bad", members=(self._members()[0], bisect_member), mode=mode
            )


class TestLibrary:
    def test_at_least_eight_scenarios_beyond_the_figures(self):
        assert len(scenario_names()) >= 8

    def test_every_scenario_expands_or_searches(self):
        for scenario in iter_scenarios():
            if scenario.strategy == "bisect":
                assert scenario.search is not None
            else:
                assert len(scenario.variants()) >= 2

    def test_get_scenario_lists_valid_names_on_miss(self):
        with pytest.raises(KeyError, match="vdd_droop_fine"):
            get_scenario("nope")


# --------------------------------------------------------------------------
# Sharding.
# --------------------------------------------------------------------------


class TestShardSpec:
    def test_parse_and_str(self):
        shard = ShardSpec.parse("1/4")
        assert (shard.index, shard.count) == (1, 4)
        assert str(shard) == "1/4"

    @pytest.mark.parametrize("text", ["", "3", "a/b", "1/0", "4/4", "-1/4"])
    def test_malformed_specs_are_rejected(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    def test_shards_partition_the_list(self):
        items = list(range(23))
        shards = [ShardSpec(index=i, count=4) for i in range(4)]
        pieces = [shard.select(items) for shard in shards]
        assert sorted(sum(pieces, [])) == items
        flat = set()
        for piece in pieces:
            assert flat.isdisjoint(piece)
            flat.update(piece)

    def test_owns_name_is_stable_and_partitioning(self):
        names = [f"scenario_{i}" for i in range(40)]
        shards = [ShardSpec(index=i, count=3) for i in range(3)]
        owners = [[s for s in shards if s.owns_name(name)] for name in names]
        assert all(len(o) == 1 for o in owners)

    def test_full_is_trivial(self):
        assert FULL.is_trivial
        assert FULL.select([1, 2, 3]) == [1, 2, 3]


# --------------------------------------------------------------------------
# Bisection vs the dense grid (Fig. 8-shaped collapse, stub pipeline).
# --------------------------------------------------------------------------


@dataclass
class FakeCollapsePipeline:
    """A Fig. 8b-shaped pipeline stub: accuracy collapses past a threshold.

    Deterministic and instant, so the strategy tests measure *pipeline
    runs*, not SNN noise.  Satisfies the executor's pipeline protocol.
    """

    config: ExperimentConfig = field(default_factory=ExperimentConfig.tiny)
    baseline: float = 0.8
    collapse_at: float = 0.1225

    def run_baseline(self) -> ExperimentResult:
        """The attack-free reference accuracy."""
        return ExperimentResult(
            attack_label="baseline",
            accuracy=self.baseline,
            baseline_accuracy=self.baseline,
        )

    def run(self, attack) -> ExperimentResult:
        """Accuracy as a monotone sigmoid collapse in ``threshold_change``."""
        change = float(getattr(attack, "threshold_change", 0.0))
        degradation = 0.92 / (1.0 + np.exp(-(change - self.collapse_at) * 400.0))
        return ExperimentResult(
            attack_label=attack.label(),
            accuracy=self.baseline * (1.0 - degradation),
            baseline_accuracy=self.baseline,
        )


@dataclass(frozen=True)
class _fake_factory:
    """Stub counterpart of ``PipelineFromConfig`` (content-scoped cache keys)."""

    config: ExperimentConfig
    engine: str = "auto"

    def __call__(self) -> FakeCollapsePipeline:
        return FakeCollapsePipeline(config=self.config)


def _collapse_values():
    return tuple(round(v, 6) for v in np.linspace(0.0, 0.2, 33))


class TestBisectionStrategy:
    def test_matches_dense_scan_on_monotone_data(self):
        values = [float(v) for v in np.linspace(0.0, 1.0, 17)]
        degradation = {v: (0.9 if v >= 0.51 else 0.05) for v in values}
        outcome = BisectionStrategy("p", target_degradation=0.5).run(
            values, degradation.get
        )
        dense = dense_collapse_index([degradation[v] for v in values], 0.5)
        assert outcome.collapse_index == dense
        assert outcome.n_probes <= 2 + int(np.ceil(np.log2(len(values))))

    def test_no_collapse_costs_one_probe(self):
        outcome = BisectionStrategy("p", target_degradation=0.5).run(
            [0.1, 0.2, 0.3], lambda value: 0.01
        )
        assert outcome.collapse_value is None
        assert outcome.n_probes == 1

    def test_immediate_collapse_returns_the_first_value(self):
        outcome = BisectionStrategy("p", target_degradation=0.5).run(
            [0.1, 0.2, 0.3], lambda value: 0.99
        )
        assert outcome.collapse_value == 0.1
        assert outcome.n_probes == 2


class TestBisectionVsDenseGrid:
    """The ISSUE acceptance: same collapse threshold, <= 25 % of the runs."""

    def _dense_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="dense",
            family="both_thresholds",
            grid={"threshold_change": _collapse_values()},
            scale="tiny",
        )

    def _bisect_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="adaptive",
            family="both_thresholds",
            grid={"threshold_change": _collapse_values()},
            strategy="bisect",
            search=BisectionSettings(target_degradation=0.5),
            scale="tiny",
        )

    def test_bisection_reproduces_the_dense_collapse_threshold(self):
        dense_runner = ScenarioRunner(pipeline_factory=_fake_factory)
        dense = dense_runner.run(self._dense_spec())
        dense_runs = dense.executor_tasks
        dense_index = dense_collapse_index(
            dense.arrays["relative_degradation"], 0.5
        )
        dense_collapse = dense.arrays["param_threshold_change"][dense_index]

        bisect_runner = ScenarioRunner(pipeline_factory=_fake_factory)
        adaptive = bisect_runner.run(self._bisect_spec())
        adaptive_runs = adaptive.executor_tasks

        assert adaptive.metrics["collapse_found"] == 1.0
        assert adaptive.metrics["collapse_value"] == pytest.approx(
            float(dense_collapse)
        )
        # The adaptive search must cost at most a quarter of the dense grid.
        assert adaptive_runs <= 0.25 * dense_runs
        assert adaptive_runs >= 2  # it did probe, not guess

    def test_bisection_resumes_free_after_a_dense_sweep(self):
        runner = ScenarioRunner(pipeline_factory=_fake_factory)
        runner.run(self._dense_spec())
        executed_before = runner.executor_for(self._bisect_spec()).stats.tasks_executed
        result = runner.run(self._bisect_spec())
        executed_after = runner.executor_for(self._bisect_spec()).stats.tasks_executed
        assert result.metrics["collapse_found"] == 1.0
        # Every probe was a cache hit against the dense sweep's results.
        assert executed_after == executed_before


class TestRunnerSharding:
    def _spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="shardable",
            family="both_thresholds",
            grid={"threshold_change": tuple(round(v, 3) for v in np.linspace(0.01, 0.2, 6))},
            scale="tiny",
        )

    def test_shards_complete_only_when_united(self):
        from repro.exec.cache import ResultCache

        cache = ResultCache()
        spec = self._spec()
        first = ScenarioRunner(
            pipeline_factory=_fake_factory,
            cache=cache,
            shard=ShardSpec(index=0, count=2),
        ).run(spec)
        assert not first.complete
        assert first.missing == 3
        second = ScenarioRunner(
            pipeline_factory=_fake_factory,
            cache=cache,
            shard=ShardSpec(index=1, count=2),
        ).run(spec)
        # The second shard sees the union and assembles the merged result.
        assert second.complete
        unsharded = ScenarioRunner(pipeline_factory=_fake_factory).run(spec)
        assert np.array_equal(
            second.arrays["accuracies"], unsharded.arrays["accuracies"]
        )
        assert second.metrics == unsharded.metrics

    def test_bisect_scenarios_are_whole_scenario_assigned(self):
        spec = ScenarioSpec(
            name="adaptive-sharded",
            family="both_thresholds",
            grid={"threshold_change": (0.05, 0.1, 0.2)},
            strategy="bisect",
            scale="tiny",
        )
        results = [
            ScenarioRunner(
                pipeline_factory=_fake_factory, shard=ShardSpec(index=i, count=3)
            ).run(spec)
            for i in range(3)
        ]
        owned = [r for r in results if not r.sharded_out]
        assert len(owned) == 1
        assert owned[0].complete


# --------------------------------------------------------------------------
# CLI: shard/resume bit-identical artifacts (real tiny-scale pipeline).
# --------------------------------------------------------------------------


SCENARIO = "separate_domain_droop"


def _digests(path):
    with open(path) as handle:
        document = json.load(handle)
    return {name: entry["sha256"] for name, entry in document["arrays"].items()}


class TestCLIShardResume:
    @pytest.fixture(scope="class")
    def unsharded_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("unsharded")
        rc = main(
            ["scenarios", "run", SCENARIO, "--scale", "tiny", "--out", str(out), "--quiet"]
        )
        assert rc == 0
        return out

    def test_sharded_merge_is_bit_identical(self, unsharded_dir, tmp_path, capsys):
        out = tmp_path / "sharded"
        for shard in ("0/2", "1/2"):
            rc = main(
                [
                    "scenarios",
                    "run",
                    SCENARIO,
                    "--scale",
                    "tiny",
                    "--out",
                    str(out),
                    "--shard",
                    shard,
                    "--quiet",
                ]
            )
            assert rc == 0
        capsys.readouterr()
        merged = out / f"scenario-{SCENARIO}.json"
        assert merged.exists(), "the final shard should assemble the artifact"
        reference = unsharded_dir / f"scenario-{SCENARIO}.json"
        assert _digests(merged) == _digests(reference)
        stored = load_scenario_result(merged)
        assert stored.metrics == load_scenario_result(reference).metrics

    def test_killed_shard_resumes_bit_identically(self, unsharded_dir, tmp_path, capsys):
        out = tmp_path / "resumed"
        # Shard 0 completes its slice (simulating a campaign killed before
        # the sibling shard ever ran)...
        rc = main(
            [
                "scenarios",
                "run",
                SCENARIO,
                "--scale",
                "tiny",
                "--out",
                str(out),
                "--shard",
                "0/2",
                "--quiet",
            ]
        )
        assert rc == 0
        assert not (out / f"scenario-{SCENARIO}.json").exists()
        # ...then an unsharded invocation resumes: shard 0's results are
        # cache hits, only the missing variants are trained.
        rc = main(
            ["scenarios", "run", SCENARIO, "--scale", "tiny", "--out", str(out), "--quiet"]
        )
        capsys.readouterr()
        assert rc == 0
        merged = out / f"scenario-{SCENARIO}.json"
        assert _digests(merged) == _digests(
            unsharded_dir / f"scenario-{SCENARIO}.json"
        )

    def test_scenarios_report_summarises_artifacts(self, unsharded_dir, capsys):
        assert main(["scenarios", "report", str(unsharded_dir)]) == 0
        out = capsys.readouterr().out
        assert SCENARIO in out
        assert "worst degradation" in out

    def test_rerun_completes_from_cache(self, unsharded_dir, capsys):
        rc = main(
            [
                "scenarios",
                "run",
                SCENARIO,
                "--scale",
                "tiny",
                "--out",
                str(unsharded_dir),
                "--quiet",
            ]
        )
        assert rc == 0
        stored = load_scenario_result(unsharded_dir / f"scenario-{SCENARIO}.json")
        assert stored.provenance["executor_tasks"] == 0
        assert stored.provenance["executor_cache_hits"] > 0


class TestShardCacheResilience:
    def test_bad_sibling_cache_does_not_block_the_run(self, tmp_path, capsys):
        from repro.store import SCHEMA_VERSION, open_shard_cache

        (tmp_path / "cache.shard-0-of-2.json").write_text(
            json.dumps({"schema_version": SCHEMA_VERSION + 1, "results": {}})
        )
        cache = open_shard_cache(tmp_path, ShardSpec(index=1, count=2))
        assert len(cache) == 0
        assert "skipping unreadable sibling cache" in capsys.readouterr().err

    def test_own_cache_file_still_fails_loudly(self, tmp_path):
        from repro.store import SCHEMA_VERSION, open_shard_cache

        (tmp_path / "cache.json").write_text(
            json.dumps({"schema_version": SCHEMA_VERSION + 1, "results": {}})
        )
        with pytest.raises(ValueError, match="schema"):
            open_shard_cache(tmp_path, None)


class TestCLIScenarioMisc:
    def test_list_names_every_scenario(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_rejects_unknown_scenarios(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenarios", "run", "not_a_scenario"])

    def test_run_without_scenarios_requires_all(self):
        with pytest.raises(SystemExit, match="--all"):
            main(["scenarios", "run"])

    def test_bad_spec_file_fails_cleanly(self, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"name": "x"}))  # no family
        with pytest.raises(SystemExit, match="missing required field"):
            main(["scenarios", "run", "--all", "--file", str(spec_path)])

    def test_unparseable_spec_file_fails_cleanly(self, tmp_path):
        spec_path = tmp_path / "broken.json"
        spec_path.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["scenarios", "run", "--all", "--file", str(spec_path)])

    def test_corrupt_scenario_artifact_fails_the_report(self, tmp_path, capsys):
        (tmp_path / "scenario-broken.json").write_text('{"scenario": "x", ')
        assert main(["scenarios", "report", str(tmp_path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_unreadable_scenario_artifact_fails_the_report(self, tmp_path, capsys):
        # A directory raises IsADirectoryError on open() — the one
        # unreadable-file shape that works regardless of uid (root ignores
        # permission bits, so chmod 000 cannot model this in CI).
        (tmp_path / "scenario-weird.json").mkdir()
        assert main(["scenarios", "report", str(tmp_path)]) == 1
        assert "cannot read file" in capsys.readouterr().err

    def test_file_loaded_scenarios_are_runnable(self, tmp_path, capsys):
        from repro.scenarios import unregister_scenario

        document = {
            "name": "from_file",
            "family": "both_thresholds",
            "grid": {"threshold_change": [-0.2, 0.2]},
            "scale": "tiny",
        }
        spec_path = tmp_path / "extra.json"
        spec_path.write_text(json.dumps(document))
        try:
            rc = main(
                [
                    "scenarios",
                    "run",
                    "from_file",
                    "--file",
                    str(spec_path),
                    "--out",
                    str(tmp_path / "results"),
                    "--quiet",
                ]
            )
            capsys.readouterr()
            assert rc == 0
            assert (tmp_path / "results" / "scenario-from_file.json").exists()
        finally:
            unregister_scenario("from_file")
