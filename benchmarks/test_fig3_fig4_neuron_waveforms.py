"""Figs. 3 & 4 — spike-generation waveforms of both analog neurons.

Regenerates the transient waveforms of the Axon-Hillock neuron (membrane and
output, Fig. 3) and of the voltage-amplifier I&F neuron (membrane, Fig. 4)
from the MNA circuit netlists, and reports spike counts/periods.
"""

import numpy as np

from repro.circuits import AxonHillockDesign, simulate_axon_hillock, simulate_if_neuron
from repro.utils.tables import format_table


def run_axon_hillock_waveform():
    design = AxonHillockDesign(
        membrane_capacitance=0.2e-12, feedback_capacitance=0.2e-12
    )
    result = simulate_axon_hillock(design, stop_time="6u", time_step="5n")
    vout = result.waveform("vout")
    vmem = result.waveform("vmem")
    spikes = vout.detect_spikes(0.5, min_separation=200e-9)
    return {
        "membrane_peak_V": vmem.maximum(),
        "output_peak_V": vout.maximum(),
        "output_spikes": len(spikes),
        "first_spike_us": spikes[0] * 1e6 if len(spikes) else float("nan"),
    }


def run_if_waveform():
    result = simulate_if_neuron(stop_time="150u", time_step="25n")
    vmem = result.waveform("vmem")
    vcmp = result.waveform("vcmp")
    spikes = vcmp.detect_spikes(0.5, min_separation=1e-6)
    return {
        "membrane_peak_V": vmem.maximum(),
        "comparator_spikes": len(spikes),
        "first_spike_us": spikes[0] * 1e6 if len(spikes) else float("nan"),
    }


def test_fig3_axon_hillock_waveform(benchmark):
    summary = benchmark.pedantic(run_axon_hillock_waveform, rounds=1, iterations=1)
    print(format_table(["quantity", "value"], summary.items(), title="Fig. 3 (Axon-Hillock)"))
    assert summary["output_spikes"] >= 1
    assert summary["output_peak_V"] > 0.5


def test_fig4_if_neuron_waveform(benchmark):
    summary = benchmark.pedantic(run_if_waveform, rounds=1, iterations=1)
    print(format_table(["quantity", "value"], summary.items(), title="Fig. 4 (I&F neuron)"))
    assert summary["comparator_spikes"] >= 1
    assert summary["membrane_peak_V"] > 0.45
