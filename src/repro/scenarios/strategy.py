"""Evaluation strategies: dense grids and adaptive bisection search.

A dense grid answers "what does the whole response surface look like"; the
adaptive :class:`BisectionStrategy` answers the campaign question the paper
cares about — *where does accuracy collapse?* — in O(log n) pipeline runs.
It binary-searches the candidate values of one swept parameter — declared
mildest corruption first — for the first value whose relative accuracy
degradation reaches a target, assuming the degradation is monotone along
the declared value order (true for every corruption family here: more
corruption never helps accuracy).

Because probes run through the shared
:class:`~repro.exec.executor.SweepExecutor`, every probe is cached: a
bisection over a grid that a dense sweep already evaluated costs zero new
pipeline runs, and re-running a bisection resumes from the persistent cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class BisectionOutcome:
    """Result of one adaptive collapse search.

    ``collapse_value`` is the first swept value whose relative degradation
    reached the target (``None`` when even the most severe value stays
    under it); ``probes`` maps each evaluated value to its measured
    degradation, in evaluation order.
    """

    parameter: str
    target_degradation: float
    collapse_value: Optional[float]
    collapse_index: Optional[int]
    probes: Dict[float, float] = field(default_factory=dict)

    @property
    def n_probes(self) -> int:
        """Number of distinct values the search evaluated."""
        return len(self.probes)

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.collapse_value is None:
            return (
                f"no collapse: degradation stays under "
                f"{self.target_degradation:.0%} across the range "
                f"({self.n_probes} probes)"
            )
        return (
            f"collapse at {self.parameter}={self.collapse_value:g} "
            f"(degradation >= {self.target_degradation:.0%}, "
            f"{self.n_probes} probes)"
        )


class BisectionStrategy:
    """Find the smallest corruption that collapses accuracy, in O(log n) runs.

    Parameters
    ----------
    parameter:
        Name of the swept parameter (reporting only; the candidate values
        arrive pre-resolved).
    target_degradation:
        Relative accuracy degradation (vs baseline) that counts as
        "collapsed", e.g. ``0.5`` for half the baseline accuracy lost.

    The candidate values must be ordered from mildest to most severe
    corruption; the measured degradation is assumed monotone non-decreasing
    along that order.  Under that assumption the search returns exactly the
    value a dense scan of the same candidates would return, with
    ``<= 2 + ceil(log2(n))`` probes instead of ``n``.
    """

    def __init__(self, parameter: str, *, target_degradation: float = 0.5) -> None:
        if not (0.0 < target_degradation <= 1.0):
            raise ValueError(
                f"target_degradation must be in (0, 1], got {target_degradation!r}"
            )
        self.parameter = parameter
        self.target_degradation = target_degradation

    def run(
        self,
        values: Sequence[float],
        degradation_of: Callable[[float], float],
    ) -> BisectionOutcome:
        """Search ``values`` (mild → severe) for the first collapsing value.

        ``degradation_of(value)`` must return the relative accuracy
        degradation of the scenario evaluated at ``value``.
        """
        values = [float(v) for v in values]
        if not values:
            raise ValueError("bisection needs at least one candidate value")
        probes: Dict[float, float] = {}

        def measure(index: int) -> float:
            value = values[index]
            if value not in probes:
                probes[value] = float(degradation_of(value))
            return probes[value]

        outcome = BisectionOutcome(
            parameter=self.parameter,
            target_degradation=self.target_degradation,
            collapse_value=None,
            collapse_index=None,
            probes=probes,
        )
        # The most severe value decides whether a collapse exists at all.
        if measure(len(values) - 1) < self.target_degradation:
            return outcome
        # The mildest value may already collapse (lo == first collapse).
        if measure(0) >= self.target_degradation:
            outcome.collapse_value = values[0]
            outcome.collapse_index = 0
            return outcome
        # Invariant: degradation(values[lo]) < target <= degradation(values[hi]).
        lo, hi = 0, len(values) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if measure(mid) >= self.target_degradation:
                hi = mid
            else:
                lo = mid
        outcome.collapse_value = values[hi]
        outcome.collapse_index = hi
        return outcome


def dense_collapse_index(
    degradations: Sequence[float], target_degradation: float
) -> Optional[int]:
    """First index whose degradation reaches the target (dense-scan reference).

    This is the exhaustive counterpart of :class:`BisectionStrategy` — the
    acceptance tests compare the two on the same grid.
    """
    for index, degradation in enumerate(degradations):
        if float(degradation) >= target_degradation:
            return index
    return None


def degradations_from_accuracies(
    accuracies: Sequence[float], baseline_accuracy: float
) -> List[float]:
    """Relative degradation per swept point (0 when the baseline is 0)."""
    if baseline_accuracy == 0.0:
        return [0.0 for _ in accuracies]
    return [
        float((baseline_accuracy - accuracy) / baseline_accuracy)
        for accuracy in accuracies
    ]
