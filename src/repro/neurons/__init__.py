"""Behavioural models of the paper's analog neurons and peripherals.

The MNA netlists in :mod:`repro.circuits` are the ground truth, but the
figure-level sensitivity sweeps (time-to-spike vs input amplitude, threshold
vs VDD, ...) and the attack calibration need thousands of evaluations, so
this package provides fast behavioural models of the same blocks:

* :mod:`repro.neurons.driver` — current-mirror driver amplitude vs VDD
  (closed form) and the regulated robust driver.
* :mod:`repro.neurons.axon_hillock` — Axon-Hillock neuron: threshold from the
  analytic inverter switching point, membrane integration, reset dynamics.
* :mod:`repro.neurons.if_amplifier` — voltage-amplifier I&F neuron: explicit
  divider-derived threshold, leak, refractory period.
* :mod:`repro.neurons.metrics` — spike-timing metrics shared by both neurons.
* :mod:`repro.neurons.calibration` — the VDD → (spike-amplitude scale,
  threshold scale) maps consumed by :mod:`repro.attacks`.

Every behavioural model exposes the same supply-voltage knob the attacks
manipulate, and :mod:`tests` plus the ablation benchmark cross-check the
behavioural sensitivities against the MNA circuit simulations.
"""

from repro.neurons.driver import CurrentDriverModel, RobustDriverModel
from repro.neurons.axon_hillock import AxonHillockModel
from repro.neurons.if_amplifier import IFAmplifierModel
from repro.neurons.metrics import SpikeMetrics, relative_change
from repro.neurons.calibration import (
    VddSensitivity,
    VddToParameterMap,
    behavioural_parameter_map,
    circuit_parameter_map,
)

__all__ = [
    "CurrentDriverModel",
    "RobustDriverModel",
    "AxonHillockModel",
    "IFAmplifierModel",
    "SpikeMetrics",
    "relative_change",
    "VddSensitivity",
    "VddToParameterMap",
    "behavioural_parameter_map",
    "circuit_parameter_map",
]
