"""The generated API reference and the docs link checker stay healthy.

Runs ``tools/gen_api_docs.py`` (build + docstring-coverage check, the same
invocation as the ``docs`` CI job) into a temp directory and asserts the
key pages exist, then runs ``tools/check_links.py`` over the committed
markdown.  A public function added to ``scenarios/``/``exec/``/
``snn/batched.py``/``analog/compiled.py`` without a docstring fails here
before it fails in CI.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(args, **kwargs):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        **kwargs,
    )


class TestApiDocsBuild:
    def test_build_and_docstring_coverage(self, tmp_path):
        out = tmp_path / "api"
        proc = _run(["tools/gen_api_docs.py", "--out", str(out), "--check"])
        assert proc.returncode == 0, proc.stderr
        assert (out / "index.md").exists()
        # One page per module, including the new subsystem's.
        for page in (
            "repro_scenarios_spec.md",
            "repro_scenarios_runner.md",
            "repro_exec_shard.md",
            "repro_snn_batched.md",
            "repro_snn_snapshot.md",
            "repro_snn_serving.md",
            "repro_exec_microbatch.md",
            "repro_analog_compiled.md",
            "repro_analog_sparse.md",
            "repro_circuits_crossbar.md",
        ):
            assert (out / page).exists(), f"missing API page {page}"
        spec_page = (out / "repro_scenarios_spec.md").read_text()
        assert "ScenarioSpec" in spec_page
        index = (out / "index.md").read_text()
        assert "repro.scenarios" in index

    def test_coverage_check_catches_missing_docstrings(self, tmp_path):
        # Sanity-check the checker itself against a synthetic module.
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import gen_api_docs

            coverage = {"repro.scenarios.fake": ["repro.scenarios.fake.f"]}
            assert gen_api_docs.check_coverage(coverage) == ["repro.scenarios.fake.f"]
            assert gen_api_docs.check_coverage({"repro.figures": ["repro.figures.x"]}) == []
        finally:
            sys.path.remove(str(REPO_ROOT / "tools"))


class TestDocsLinks:
    def test_committed_markdown_has_no_broken_relative_links(self):
        proc = _run(["tools/check_links.py", "README.md", "docs"])
        assert proc.returncode == 0, proc.stderr

    def test_checker_flags_broken_links(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [other](missing.md)")
        proc = _run(["tools/check_links.py", str(page)])
        assert proc.returncode == 1
        assert "missing.md" in proc.stderr
