"""Backward-Euler transient analysis.

The transient engine advances the circuit with a fixed time step, solving the
nonlinear system at each step with the previous solution as the Newton
starting point.  Backward Euler is unconditionally stable, which matters for
the stiff positive-feedback loop inside the Axon-Hillock neuron.

Two execution modes are provided:

* **Fixed-step** (default): one solve per output point, exactly as SPICE's
  ``.tran`` with a uniform print grid.  Trace buffers are preallocated to
  the known number of points.
* **Adaptive** (``adaptive=True``): the step grows geometrically while
  Newton converges quickly and shrinks when a step needs subdivision, so
  long flat stretches of a waveform cost far fewer solves.  The output time
  grid then follows the accepted steps (non-uniform spacing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analog.compiled import make_system
from repro.analog.devices import Capacitor
from repro.analog.mna import (
    ConvergenceError,
    MNASystem,
    NewtonStats,
    SolverOptions,
    StampState,
    newton_solve,
    seed_solution_vector,
)
from repro.analog.netlist import Circuit
from repro.analog.units import ValueLike, parse_value
from repro.analog.waveform import Waveform
from repro.utils.validation import check_positive


@dataclass
class TransientResult:
    """Time-domain solution of a circuit.

    Node voltages (and voltage-source branch currents) are stored for every
    time point.  Use :meth:`voltage` / :meth:`waveform` to extract traces.
    """

    circuit_name: str
    time: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        """Voltage trace of ``node`` (zeros for ground)."""
        if node in self.node_voltages:
            return self.node_voltages[node]
        return np.zeros_like(self.time)

    def current(self, device_name: str) -> np.ndarray:
        """Branch-current trace of a device with a branch unknown.

        Per :mod:`repro.analog.devices`, the devices that carry a branch
        current are voltage sources and inductors (``n_branches == 1``);
        both are fully supported here.  Other devices (resistors,
        capacitors, MOSFETs, ...) have no branch unknown — their terminal
        currents are not recorded, so looking them up raises ``KeyError``.
        """
        return self.branch_currents[device_name]

    def waveform(self, node: str) -> Waveform:
        """The voltage trace of ``node`` wrapped as a :class:`Waveform`."""
        return Waveform(self.time, self.voltage(node), name=node)

    def final_voltages(self) -> Dict[str, float]:
        """Node voltages at the last time point."""
        return {node: float(trace[-1]) for node, trace in self.node_voltages.items()}

    def __len__(self) -> int:
        return len(self.time)


class _TraceRecorder:
    """Preallocated NumPy trace buffers with vectorised per-step recording.

    Replaces the per-node, per-step Python ``list.append`` hot path: one
    fancy-indexing gather per accepted step writes every recorded node and
    branch at once.  In adaptive mode (unknown point count) the buffers grow
    geometrically and are trimmed on finalisation.
    """

    def __init__(
        self,
        system: MNASystem,
        recorded_nodes: Sequence[str],
        branch_devices: Sequence,
        capacity: int,
    ) -> None:
        self._system = system
        self._nodes = list(recorded_nodes)
        self._devices = list(branch_devices)
        indices = np.array(
            [system.index_of(node) for node in self._nodes], dtype=np.intp
        )
        # Ground (index -1) would alias the last unknown under fancy
        # indexing; gather it anyway and mask the column to zero afterwards.
        self._grounded = indices < 0
        self._node_indices = np.where(self._grounded, 0, indices)
        self._branch_indices = np.array(
            [system.branch_index_of(device) for device in self._devices],
            dtype=np.intp,
        )
        capacity = max(capacity, 1)
        self._times = np.empty(capacity)
        self._node_buf = np.empty((len(self._nodes), capacity))
        self._branch_buf = np.empty((len(self._devices), capacity))
        self._count = 0

    def append(self, time: float, solution: np.ndarray) -> None:
        """Record one accepted time point."""
        if self._count == len(self._times):
            self._grow()
        i = self._count
        self._times[i] = time
        if len(self._nodes):
            column = solution[self._node_indices]
            if self._grounded.any():
                column[self._grounded] = 0.0
            self._node_buf[:, i] = column
        if len(self._devices):
            self._branch_buf[:, i] = solution[self._branch_indices]
        self._count = i + 1

    def _grow(self) -> None:
        new_capacity = 2 * len(self._times)
        self._times = np.concatenate([self._times, np.empty(len(self._times))])
        self._node_buf = np.concatenate(
            [self._node_buf, np.empty(self._node_buf.shape)], axis=1
        )
        self._branch_buf = np.concatenate(
            [self._branch_buf, np.empty(self._branch_buf.shape)], axis=1
        )
        assert len(self._times) == new_capacity

    def finalise(self, circuit_name: str) -> TransientResult:
        """Trim the buffers and wrap them as a :class:`TransientResult`."""
        n = self._count
        return TransientResult(
            circuit_name=circuit_name,
            time=self._times[:n].copy(),
            node_voltages={
                node: self._node_buf[row, :n].copy()
                for row, node in enumerate(self._nodes)
            },
            branch_currents={
                device.name: self._branch_buf[row, :n].copy()
                for row, device in enumerate(self._devices)
            },
        )


def time_grid(stop_time: float, time_step: float) -> np.ndarray:
    """The fixed-step output grid covering ``[0, stop_time]``.

    The step count is *ceiled* so a ``stop_time`` that is not an integer
    multiple of ``time_step`` is never silently under-simulated (e.g.
    ``stop_time = 2.4 * dt`` runs three steps, not two); the final step is
    clamped to land exactly on ``stop_time``.  The small tolerance keeps an
    exact multiple with float noise (``stop/dt = 2.9999999``) at its
    intended count.
    """
    n_steps = max(1, math.ceil(stop_time / time_step - 1e-6))
    times = np.minimum(np.arange(n_steps + 1) * time_step, stop_time)
    times[-1] = stop_time
    return times


def initial_condition_vector(
    system: MNASystem,
    circuit: Circuit,
    initial_voltages: Optional[Dict[str, float]] = None,
) -> np.ndarray:
    """Starting solution for ``use_initial_conditions=True`` transients.

    Applies explicit node voltages first, then every capacitor's
    ``initial_voltage`` (defined as ``v(a) - v(b)``) for capacitors with one
    grounded terminal — in either orientation, so a capacitor listed
    ``(gnd, node)`` seeds ``node`` at ``-initial_voltage`` instead of being
    silently ignored.
    """
    initial = seed_solution_vector(system, initial_voltages)
    for device in circuit.devices:
        if isinstance(device, Capacitor) and device.initial_voltage is not None:
            a, b = device.nodes
            idx_a, idx_b = system.index_of(a), system.index_of(b)
            if idx_a >= 0 and idx_b < 0:
                initial[idx_a] = device.initial_voltage
            elif idx_b >= 0 and idx_a < 0:
                initial[idx_b] = -device.initial_voltage
    return initial


def transient_analysis(
    circuit: Circuit,
    *,
    stop_time: ValueLike,
    time_step: ValueLike,
    initial_voltages: Optional[Dict[str, float]] = None,
    use_initial_conditions: bool = False,
    record_nodes: Optional[Sequence[str]] = None,
    options: Optional[SolverOptions] = None,
    adaptive: bool = False,
    max_step: Optional[ValueLike] = None,
    engine: str = "auto",
) -> TransientResult:
    """Run a backward-Euler transient simulation.

    Parameters
    ----------
    circuit:
        The circuit to simulate.
    stop_time, time_step:
        Simulation length and step (SPICE-style strings accepted,
        e.g. ``"2u"``, ``"1n"``).  In adaptive mode ``time_step`` is the
        *base* step: the controller never shrinks the accepted step below
        it (stiff intervals are still subdivided internally) and grows it
        up to ``max_step`` while Newton converges quickly.
    initial_voltages:
        Optional starting node voltages.  When ``use_initial_conditions`` is
        False these only seed the DC operating-point solve.
    use_initial_conditions:
        If True, skip the initial DC solve and start directly from
        ``initial_voltages`` (unspecified nodes start at 0 V) plus any
        capacitor ``initial_voltage`` attributes.
    record_nodes:
        Restrict recording to these nodes (all nodes by default).
    adaptive:
        Enable the adaptive time-step controller.  The output time grid is
        then non-uniform (one point per accepted step); fixed-step mode
        keeps the exact uniform grid of previous releases.
    max_step:
        Adaptive mode only: upper bound on the grown step.  Defaults to
        ``16 * time_step`` (clamped to ``stop_time``).
    engine:
        ``"auto"`` (default) compiles the circuit into a
        :class:`~repro.analog.compiled.CompiledCircuit` when every device
        type is supported (routing crossbar-scale netlists to the sparse
        tier, see :data:`~repro.analog.compiled.SPARSE_SIZE_THRESHOLD`),
        falling back to the scalar reference engine otherwise;
        ``"compiled"`` / ``"sparse"`` / ``"scalar"`` force one backend.
    """
    stop_time = check_positive(parse_value(stop_time), "stop_time")
    time_step = check_positive(parse_value(time_step), "time_step")
    if time_step > stop_time:
        raise ValueError("time_step must not exceed stop_time")

    system = make_system(circuit, engine)
    options = options or SolverOptions()

    if use_initial_conditions:
        initial = initial_condition_vector(system, circuit, initial_voltages)
    else:
        guess = seed_solution_vector(system, initial_voltages)
        dc_state = StampState(system=system, analysis="dc", time=0.0)
        initial = newton_solve(system, dc_state, guess, options)

    times = time_grid(stop_time, time_step)
    recorded = list(record_nodes) if record_nodes is not None else system.node_names
    branch_devices = [d for d in circuit.devices if d.n_branches]
    recorder = _TraceRecorder(system, recorded, branch_devices, len(times))

    recorder.append(0.0, initial)
    if adaptive:
        _run_adaptive(
            system,
            initial,
            recorder,
            stop_time=stop_time,
            base_step=time_step,
            max_step=parse_value(max_step) if max_step is not None else None,
            options=options,
        )
    else:
        solution = initial
        for step in range(1, len(times)):
            solution = _advance(
                system, solution, times[step - 1], times[step], options, depth=0
            )
            recorder.append(times[step], solution)

    return recorder.finalise(circuit.name)


#: Maximum number of recursive step subdivisions attempted on a convergence
#: failure (each level splits the interval into :data:`_SUBDIVISION_FACTOR`).
_MAX_SUBDIVISION_DEPTH = 4
_SUBDIVISION_FACTOR = 4

#: Adaptive controller tuning: grow the step after a solve this fast (Newton
#: iterations), shrink it after one this slow, by these factors.
_FAST_ITERATIONS = 8
_SLOW_ITERATIONS = 40
_GROWTH_FACTOR = 2.0
_SHRINK_FACTOR = 0.5
_DEFAULT_MAX_STEP_MULTIPLE = 16.0


@dataclass
class StepDiagnostics:
    """Per-step feedback from :func:`_advance` to the adaptive controller."""

    newton_iterations: int = 0
    subdivisions: int = 0
    #: True when any solve in the step only converged via gmin stepping — a
    #: stiffness signal even when the final stage's iteration count is low.
    used_gmin_stepping: bool = False

    @property
    def struggled(self) -> bool:
        """The step needed a rescue; the controller must not grow from it."""
        return bool(self.subdivisions) or self.used_gmin_stepping


def _run_adaptive(
    system: MNASystem,
    solution: np.ndarray,
    recorder: _TraceRecorder,
    *,
    stop_time: float,
    base_step: float,
    max_step: Optional[float],
    options: SolverOptions,
) -> None:
    """Advance to ``stop_time`` with a growing/shrinking accepted step.

    The accepted step never drops below ``base_step`` — stiff transitions
    inside a step are handled by :func:`_advance`'s recursive subdivision —
    and never exceeds ``max_step``.  After a cleanly converged fast solve
    the step doubles; after a subdivided or slow solve it halves.
    """
    if max_step is None:
        max_step = _DEFAULT_MAX_STEP_MULTIPLE * base_step
    max_step = min(max(max_step, base_step), stop_time)
    t = 0.0
    dt = base_step
    # Guard against float-accumulation stutter at the end of the interval.
    tail_tolerance = 1e-9 * stop_time
    while stop_time - t > tail_tolerance:
        dt_step = min(dt, stop_time - t)
        diagnostics = StepDiagnostics()
        solution = _advance(
            system, solution, t, t + dt_step, options, depth=0, diagnostics=diagnostics
        )
        t += dt_step
        recorder.append(min(t, stop_time), solution)
        if diagnostics.struggled:
            dt = max(dt_step * _SHRINK_FACTOR, base_step)
        elif diagnostics.newton_iterations <= _FAST_ITERATIONS:
            dt = min(dt * _GROWTH_FACTOR, max_step)
        elif diagnostics.newton_iterations >= _SLOW_ITERATIONS:
            dt = max(dt * _SHRINK_FACTOR, base_step)


def _advance(
    system: MNASystem,
    solution: np.ndarray,
    t_start: float,
    t_stop: float,
    options: SolverOptions,
    *,
    depth: int,
    diagnostics: Optional[StepDiagnostics] = None,
) -> np.ndarray:
    """Advance the circuit from ``t_start`` to ``t_stop`` in one step.

    If Newton-Raphson fails (typically during a regenerative transition such
    as the Axon-Hillock firing edge), the interval is subdivided recursively
    with a smaller local time step, up to :data:`_MAX_SUBDIVISION_DEPTH`
    levels; the failure is re-raised once the depth budget is exhausted.
    """
    state = StampState(
        system=system,
        analysis="transient",
        time=t_stop,
        dt=t_stop - t_start,
        previous=solution,
    )
    stats = NewtonStats() if diagnostics is not None else None
    # Compiled systems can offer a frozen-Jacobian first iterate (LU reuse
    # from the previous step) as a better Newton starting point; the solve
    # below always runs genuine Newton from it, so a poor prediction only
    # costs iterations, never correctness.  It is skipped whenever step
    # diagnostics are collected (adaptive mode): the controller sizes steps
    # from Newton-iteration counts, and a predictor-shortened count could
    # steer it onto a different accepted-step grid than the scalar engine.
    guess = solution
    predict = (
        getattr(system, "predict_step", None) if diagnostics is None else None
    )
    if predict is not None:
        predicted = predict(state, solution, options)
        if predicted is not None:
            guess = predicted
    try:
        result = newton_solve(system, state, guess, options, stats=stats)
        if diagnostics is not None:
            diagnostics.newton_iterations = max(
                diagnostics.newton_iterations, stats.iterations
            )
            diagnostics.used_gmin_stepping |= stats.used_gmin_stepping
        return result
    except ConvergenceError:
        if depth >= _MAX_SUBDIVISION_DEPTH:
            raise
    if diagnostics is not None:
        diagnostics.subdivisions += 1
    sub_times = np.linspace(t_start, t_stop, _SUBDIVISION_FACTOR + 1)
    for sub_start, sub_stop in zip(sub_times[:-1], sub_times[1:]):
        solution = _advance(
            system,
            solution,
            float(sub_start),
            float(sub_stop),
            options,
            depth=depth + 1,
            diagnostics=diagnostics,
        )
    return solution
