"""Linear and quasi-linear circuit devices.

Every device implements the small stamping protocol used by
:mod:`repro.analog.mna`:

* ``nodes`` — the tuple of node *names* the device connects to.
* ``n_branches`` — how many extra branch-current unknowns it needs
  (voltage sources and inductors need one, everything else none).
* ``is_nonlinear`` — whether its stamp depends on the present voltage guess
  (and therefore requires Newton-Raphson iteration).
* ``stamp(stamper, state)`` — add the device's contribution to the MNA matrix
  and right-hand side.  ``state`` carries the analysis mode, the time step and
  the current voltage guess (see :class:`repro.analog.mna.StampState`).

Source values may be constants, arbitrary callables of time, or one of the
waveform helpers (:class:`PulseSource`, :class:`PiecewiseLinearSource`,
:class:`SineSource`), mirroring SPICE's ``PULSE``/``PWL``/``SIN`` sources.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Union

import numpy as np

from repro.analog.units import ValueLike, parse_value, thermal_voltage
from repro.utils.validation import check_positive

#: Minimum conductance added in parallel with nonlinear elements to keep the
#: MNA matrix well conditioned (SPICE's ``GMIN``).
GMIN = 1e-12


class SourceWaveform:
    """Base class for time-dependent source waveforms."""

    def __call__(self, time: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def value_at(self, time: float) -> float:
        """Alias for ``self(time)``."""
        return self(time)


class PulseSource(SourceWaveform):
    """A SPICE-style periodic pulse waveform.

    Parameters
    ----------
    low, high:
        Baseline and pulsed value (volts or amperes depending on use).
    delay:
        Time before the first rising edge.
    rise, fall:
        Rise and fall times (linear ramps).
    width:
        Time spent at ``high`` (excluding ramps).
    period:
        Repetition period.  Must be at least ``rise + width + fall``.
    """

    def __init__(
        self,
        low: ValueLike,
        high: ValueLike,
        *,
        delay: ValueLike = 0.0,
        rise: ValueLike = 1e-12,
        fall: ValueLike = 1e-12,
        width: ValueLike,
        period: ValueLike,
    ) -> None:
        self.low = parse_value(low)
        self.high = parse_value(high)
        self.delay = parse_value(delay)
        self.rise = check_positive(parse_value(rise), "rise")
        self.fall = check_positive(parse_value(fall), "fall")
        self.width = check_positive(parse_value(width), "width")
        self.period = check_positive(parse_value(period), "period")
        if self.period < self.rise + self.width + self.fall:
            raise ValueError(
                "pulse period must be >= rise + width + fall "
                f"({self.period} < {self.rise + self.width + self.fall})"
            )

    def __call__(self, time: float) -> float:
        if time < self.delay:
            return self.low
        t = (time - self.delay) % self.period
        if t < self.rise:
            return self.low + (self.high - self.low) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.high
        t -= self.width
        if t < self.fall:
            return self.high + (self.low - self.high) * t / self.fall
        return self.low

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PulseSource(low={self.low}, high={self.high}, width={self.width}, "
            f"period={self.period})"
        )


class PiecewiseLinearSource(SourceWaveform):
    """A piecewise-linear waveform defined by (time, value) breakpoints."""

    def __init__(self, points: Sequence[tuple[ValueLike, ValueLike]]) -> None:
        if len(points) < 2:
            raise ValueError("a PWL source needs at least two breakpoints")
        times = [parse_value(t) for t, _ in points]
        values = [parse_value(v) for _, v in points]
        if any(t1 >= t2 for t1, t2 in zip(times, times[1:])):
            raise ValueError("PWL breakpoint times must be strictly increasing")
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)

    def __call__(self, time: float) -> float:
        return float(np.interp(time, self.times, self.values))


class SineSource(SourceWaveform):
    """A sinusoidal waveform ``offset + amplitude * sin(2*pi*f*(t-delay))``."""

    def __init__(
        self,
        offset: ValueLike,
        amplitude: ValueLike,
        frequency: ValueLike,
        *,
        delay: ValueLike = 0.0,
    ) -> None:
        self.offset = parse_value(offset)
        self.amplitude = parse_value(amplitude)
        self.frequency = check_positive(parse_value(frequency), "frequency")
        self.delay = parse_value(delay)

    def __call__(self, time: float) -> float:
        if time < self.delay:
            return self.offset
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency * (time - self.delay)
        )


SourceValue = Union[ValueLike, Callable[[float], float], SourceWaveform]


def _evaluate_source(value: SourceValue, time: float) -> float:
    """Evaluate a constant, callable or waveform source at ``time``."""
    if callable(value):
        return float(value(time))
    return parse_value(value)


class Device:
    """Base class for all circuit devices."""

    #: Number of extra branch-current unknowns this device introduces.
    n_branches = 0
    #: Whether the stamp depends on the present voltage guess.
    is_nonlinear = False

    def __init__(self, name: str, nodes: Sequence[str]) -> None:
        self.name = name
        self.nodes = tuple(str(n) for n in nodes)

    def stamp(self, stamper, state) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes})"


class Resistor(Device):
    """An ideal linear resistor."""

    def __init__(self, name: str, node_a: str, node_b: str, resistance: ValueLike) -> None:
        super().__init__(name, (node_a, node_b))
        self.resistance = check_positive(parse_value(resistance), f"{name}.resistance")

    @property
    def conductance(self) -> float:
        """1 / R."""
        return 1.0 / self.resistance

    def stamp(self, stamper, state) -> None:
        a, b = self.nodes
        stamper.stamp_conductance(a, b, self.conductance)

    def current(self, v_a: float, v_b: float) -> float:
        """Current flowing from ``node_a`` to ``node_b``."""
        return (v_a - v_b) * self.conductance


class Capacitor(Device):
    """An ideal linear capacitor.

    In DC analysis the capacitor is an open circuit (only ``GMIN`` is
    stamped); in transient analysis it is replaced by its backward-Euler
    companion model.
    """

    def __init__(
        self,
        name: str,
        node_a: str,
        node_b: str,
        capacitance: ValueLike,
        *,
        initial_voltage: float | None = None,
    ) -> None:
        super().__init__(name, (node_a, node_b))
        self.capacitance = check_positive(parse_value(capacitance), f"{name}.capacitance")
        self.initial_voltage = initial_voltage

    def stamp(self, stamper, state) -> None:
        a, b = self.nodes
        if state.analysis == "dc":
            stamper.stamp_conductance(a, b, GMIN)
            return
        geq = self.capacitance / state.dt
        v_prev = state.previous_voltage(a) - state.previous_voltage(b)
        stamper.stamp_conductance(a, b, geq)
        # Companion current source: i = geq * (v - v_prev); the -geq*v_prev
        # term is injected as an independent source.
        stamper.stamp_current_injection(a, geq * v_prev)
        stamper.stamp_current_injection(b, -geq * v_prev)


class Inductor(Device):
    """An ideal linear inductor (branch-current formulation)."""

    n_branches = 1

    def __init__(self, name: str, node_a: str, node_b: str, inductance: ValueLike) -> None:
        super().__init__(name, (node_a, node_b))
        self.inductance = check_positive(parse_value(inductance), f"{name}.inductance")

    def stamp(self, stamper, state) -> None:
        a, b = self.nodes
        branch = stamper.branch_index(self)
        # Branch equation: v_a - v_b - (L/dt) * (i - i_prev) = 0 in transient,
        # v_a - v_b = 0 in DC (short circuit).
        stamper.stamp_branch_voltage(a, b, branch)
        if state.analysis == "transient":
            req = self.inductance / state.dt
            i_prev = state.previous_branch_current(self)
            stamper.add_matrix_branch(branch, branch, -req)
            stamper.add_rhs_branch(branch, -req * i_prev)


class VoltageSource(Device):
    """An independent voltage source (constant or time-varying)."""

    n_branches = 1

    def __init__(self, name: str, node_pos: str, node_neg: str, value: SourceValue) -> None:
        super().__init__(name, (node_pos, node_neg))
        self.value = value

    def value_at(self, time: float) -> float:
        """Source voltage at ``time``."""
        return _evaluate_source(self.value, time)

    def stamp(self, stamper, state) -> None:
        pos, neg = self.nodes
        branch = stamper.branch_index(self)
        stamper.stamp_branch_voltage(pos, neg, branch)
        stamper.add_rhs_branch(branch, self.value_at(state.time))


class CurrentSource(Device):
    """An independent current source (constant or time-varying).

    Positive current flows *out of* ``node_pos``, through the source, and
    *into* ``node_neg`` — i.e. the source injects current into ``node_neg``.
    This matches the SPICE convention where a current source from VDD to a
    node pulls current out of VDD and pushes it into the node.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, value: SourceValue) -> None:
        super().__init__(name, (node_pos, node_neg))
        self.value = value

    def value_at(self, time: float) -> float:
        """Source current at ``time``."""
        return _evaluate_source(self.value, time)

    def stamp(self, stamper, state) -> None:
        pos, neg = self.nodes
        current = self.value_at(state.time)
        stamper.stamp_current_injection(pos, -current)
        stamper.stamp_current_injection(neg, current)


class Diode(Device):
    """An ideal exponential junction diode with series conductance limiting."""

    is_nonlinear = True

    def __init__(
        self,
        name: str,
        node_anode: str,
        node_cathode: str,
        *,
        saturation_current: ValueLike = 1e-14,
        emission_coefficient: float = 1.0,
        temperature_k: float = 300.15,
    ) -> None:
        super().__init__(name, (node_anode, node_cathode))
        self.saturation_current = check_positive(
            parse_value(saturation_current), f"{name}.saturation_current"
        )
        self.emission_coefficient = check_positive(
            emission_coefficient, f"{name}.emission_coefficient"
        )
        self.vt = self.emission_coefficient * thermal_voltage(temperature_k)
        # Critical voltage above which the exponential is linearised to avoid
        # overflow during Newton iterations.
        self.v_crit = self.vt * math.log(self.vt / (math.sqrt(2.0) * self.saturation_current))

    def current_and_conductance(self, v: float) -> tuple[float, float]:
        """Diode current and small-signal conductance at forward voltage ``v``."""
        v_lim = min(v, self.v_crit + 10.0 * self.vt)
        exp_term = math.exp(v_lim / self.vt)
        current = self.saturation_current * (exp_term - 1.0)
        conductance = self.saturation_current * exp_term / self.vt
        if v > v_lim:
            # Linear extrapolation beyond the clamp keeps the Jacobian finite.
            current += conductance * (v - v_lim)
        return current, conductance + GMIN

    def stamp(self, stamper, state) -> None:
        anode, cathode = self.nodes
        v = state.guess_voltage(anode) - state.guess_voltage(cathode)
        current, conductance = self.current_and_conductance(v)
        i_eq = current - conductance * v
        stamper.stamp_conductance(anode, cathode, conductance)
        stamper.stamp_current_injection(anode, -i_eq)
        stamper.stamp_current_injection(cathode, i_eq)


def diode_current_and_conductance_array(
    v: np.ndarray,
    *,
    saturation_current: np.ndarray,
    vt: np.ndarray,
    v_crit: np.ndarray,
):
    """Vectorised :meth:`Diode.current_and_conductance` over arrays of diodes.

    All arguments broadcast.  Returns ``(current, conductance)`` with the
    same exponential clamp and linear extrapolation as the scalar model.
    """
    v_lim = np.minimum(v, v_crit + 10.0 * vt)
    exp_term = np.exp(v_lim / vt)
    current = saturation_current * (exp_term - 1.0)
    conductance = saturation_current * exp_term / vt
    current = current + np.where(v > v_lim, conductance * (v - v_lim), 0.0)
    return current, conductance + GMIN


class VoltageControlledSwitch(Device):
    """A smooth voltage-controlled switch.

    The conductance between ``node_a`` and ``node_b`` transitions smoothly
    (logistic) from ``off_conductance`` to ``on_conductance`` as the control
    voltage ``v(ctrl_pos) - v(ctrl_neg)`` crosses ``threshold``.  The smooth
    transition keeps Newton-Raphson well behaved.
    """

    is_nonlinear = True

    def __init__(
        self,
        name: str,
        node_a: str,
        node_b: str,
        ctrl_pos: str,
        ctrl_neg: str,
        *,
        threshold: ValueLike = 0.5,
        on_resistance: ValueLike = 1e3,
        off_resistance: ValueLike = 1e12,
        transition_width: ValueLike = 0.05,
    ) -> None:
        super().__init__(name, (node_a, node_b, ctrl_pos, ctrl_neg))
        self.threshold = parse_value(threshold)
        self.on_conductance = 1.0 / check_positive(
            parse_value(on_resistance), f"{name}.on_resistance"
        )
        self.off_conductance = 1.0 / check_positive(
            parse_value(off_resistance), f"{name}.off_resistance"
        )
        self.transition_width = check_positive(
            parse_value(transition_width), f"{name}.transition_width"
        )

    def conductance_at(self, v_ctrl: float) -> tuple[float, float]:
        """Switch conductance and its derivative w.r.t. the control voltage."""
        x = (v_ctrl - self.threshold) / self.transition_width
        # Numerically safe logistic.
        if x >= 0:
            sig = 1.0 / (1.0 + math.exp(-x))
        else:
            ex = math.exp(x)
            sig = ex / (1.0 + ex)
        g = self.off_conductance + (self.on_conductance - self.off_conductance) * sig
        dg = (
            (self.on_conductance - self.off_conductance)
            * sig
            * (1.0 - sig)
            / self.transition_width
        )
        return g, dg

    def stamp(self, stamper, state) -> None:
        a, b, cp, cn = self.nodes
        v_ctrl = state.guess_voltage(cp) - state.guess_voltage(cn)
        v_ab = state.guess_voltage(a) - state.guess_voltage(b)
        g, dg = self.conductance_at(v_ctrl)
        # i = g(v_ctrl) * v_ab; linearise in both v_ab and v_ctrl.
        stamper.stamp_conductance(a, b, g)
        trans = dg * v_ab
        stamper.stamp_transconductance(a, b, cp, cn, trans)
        i_eq = -trans * v_ctrl
        stamper.stamp_current_injection(a, -i_eq)
        stamper.stamp_current_injection(b, i_eq)


def switch_conductance_array(
    v_ctrl: np.ndarray,
    *,
    threshold: np.ndarray,
    on_conductance: np.ndarray,
    off_conductance: np.ndarray,
    transition_width: np.ndarray,
):
    """Vectorised :meth:`VoltageControlledSwitch.conductance_at` over arrays.

    All arguments broadcast.  Returns ``(conductance, dconductance/dv_ctrl)``
    using the same numerically safe logistic as the scalar model.
    """
    x = (v_ctrl - threshold) / transition_width
    ex = np.exp(-np.abs(x))
    sig = np.where(x >= 0.0, 1.0 / (1.0 + ex), ex / (1.0 + ex))
    span = on_conductance - off_conductance
    g = off_conductance + span * sig
    dg = span * sig * (1.0 - sig) / transition_width
    return g, dg
