"""Topology-aware dispatch of circuit-tier sweeps onto the batched engine.

The pipeline tier fans independent SNN training runs out over processes
(:class:`~repro.exec.executor.SweepExecutor`); the circuit tier has a much
cheaper trick available: a sweep whose points are *parameter variants of one
topology* (a VDD grid over one inverter, a sizing grid over one neuron) can
advance every point in lockstep through the batched engine of
:mod:`repro.analog.batch` — stacked ``(B, N, N)`` matrices, one vectorised
device evaluation for all points, one batched solve per Newton iteration.

:class:`CircuitSweepDispatcher` decides the route: batched when every
circuit shares the reference topology and consists of compiled device
types, per-circuit serial otherwise.  The figure runners and the circuit
helpers (``threshold_vs_vdd``, ``amplitude_vs_vdd``, ...) use this to make
the threshold/VDD sweeps of Figs. 5, 6 and the attack-calibration maps one
simulation pass each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analog.batch import (
    TopologyMismatchError,
    batched_dc_sweep,
    batched_operating_points,
    batched_transient_analysis,
    shares_topology,
)
from repro.analog.dc import DCSweepResult, OperatingPoint, dc_operating_point, dc_sweep
from repro.analog.netlist import Circuit
from repro.analog.transient import TransientResult, transient_analysis


@dataclass
class CircuitSweepDispatcher:
    """Routes a list of circuits to the batched or the serial engine.

    Parameters
    ----------
    batch:
        ``True`` (default) batches whenever the circuits share a topology;
        ``False`` always runs the serial per-circuit path (reference
        behaviour, useful for parity debugging).
    engine:
        Solver backend forwarded to every analysis (see
        :func:`repro.analog.compiled.make_system`): ``"auto"`` (default)
        picks dense-compiled or sparse by system size, ``"sparse"`` forces
        the CSC + ``splu`` tier, ``"compiled"`` forces the dense engine and
        ``"scalar"`` forces the per-device reference path (which also
        disables batching — the scalar engine has no lockstep mode).

    The ``batched_sweeps`` / ``serial_sweeps`` counters record which route
    each sweep actually took.
    """

    batch: bool = True
    engine: str = "auto"
    batched_sweeps: int = 0
    serial_sweeps: int = 0
    _last_route: str = field(default="", repr=False)

    def _use_batch(self, circuits: Sequence[Circuit]) -> bool:
        route_batched = (
            self.batch
            and self.engine != "scalar"
            and len(circuits) > 1
            and shares_topology(circuits)
        )
        if route_batched:
            self.batched_sweeps += 1
            self._last_route = "batched"
        else:
            self.serial_sweeps += 1
            self._last_route = "serial"
        return route_batched

    # --------------------------------------------------------------- transient
    def run_transients(
        self,
        circuits: Sequence[Circuit],
        *,
        stop_time,
        time_step,
        initial_voltages: Optional[Dict[str, float]] = None,
        use_initial_conditions: bool = False,
        record_nodes: Optional[Sequence[str]] = None,
        options=None,
    ) -> List[TransientResult]:
        """Fixed-step transients of every circuit, batched when possible."""
        if self._use_batch(circuits):
            try:
                return batched_transient_analysis(
                    circuits,
                    stop_time=stop_time,
                    time_step=time_step,
                    initial_voltages=initial_voltages,
                    use_initial_conditions=use_initial_conditions,
                    record_nodes=record_nodes,
                    options=options,
                    engine=self.engine,
                )
            except TopologyMismatchError:  # pragma: no cover - racy rebuild
                self._last_route = "serial"
        return [
            transient_analysis(
                circuit,
                stop_time=stop_time,
                time_step=time_step,
                initial_voltages=initial_voltages,
                use_initial_conditions=use_initial_conditions,
                record_nodes=record_nodes,
                options=options,
                engine=self.engine,
            )
            for circuit in circuits
        ]

    # ---------------------------------------------------------------------- dc
    def run_dc_sweep(
        self,
        circuits: Sequence[Circuit],
        source_name: str,
        values,
        *,
        options=None,
    ) -> List[DCSweepResult]:
        """Sweep one named source across every circuit, batched when possible.

        ``values`` is a shared ``(n_points,)`` grid or one row per circuit
        (``(B, n_points)``, e.g. VIN ramps scaled to each variant's VDD).
        """
        grid = np.asarray(values, dtype=float)
        if grid.ndim == 1:
            grid = np.broadcast_to(grid, (len(circuits), len(grid)))
        elif grid.ndim != 2 or grid.shape[0] != len(circuits):
            raise ValueError(
                "values must be (n_points,) or (n_circuits, n_points); got "
                f"shape {grid.shape} for {len(circuits)} circuits"
            )
        if self._use_batch(circuits):
            try:
                return batched_dc_sweep(
                    circuits, source_name, grid, options=options, engine=self.engine
                )
            except TopologyMismatchError:  # pragma: no cover - racy rebuild
                self._last_route = "serial"
        return [
            dc_sweep(circuit, source_name, grid[i], options=options, engine=self.engine)
            for i, circuit in enumerate(circuits)
        ]

    def run_operating_points(
        self,
        circuits: Sequence[Circuit],
        *,
        initial_guesses: Optional[Sequence[Dict[str, float]]] = None,
        options=None,
    ) -> List[OperatingPoint]:
        """DC operating points of every circuit, batched when possible."""
        if self._use_batch(circuits):
            try:
                return batched_operating_points(
                    circuits,
                    initial_guesses=initial_guesses,
                    options=options,
                    engine=self.engine,
                )
            except TopologyMismatchError:  # pragma: no cover - racy rebuild
                self._last_route = "serial"
        guesses = initial_guesses or [None] * len(circuits)
        return [
            dc_operating_point(
                circuit, initial_guess=guess, options=options, engine=self.engine
            )
            for circuit, guess in zip(circuits, guesses)
        ]
