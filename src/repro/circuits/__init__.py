"""Netlists of every circuit in the paper.

* :mod:`repro.circuits.inverter` — CMOS inverter and switching-threshold
  extraction (the Axon-Hillock membrane threshold).
* :mod:`repro.circuits.ota` — the 5-transistor amplifier reused by the I&F
  neuron, the comparator defense and the robust driver's op-amp.
* :mod:`repro.circuits.current_driver` — the current-mirror input driver
  (Fig. 5a) whose output amplitude tracks VDD.
* :mod:`repro.circuits.axon_hillock` — the Axon-Hillock neuron (Fig. 2a).
* :mod:`repro.circuits.if_neuron` — the voltage-amplifier I&F neuron
  (Fig. 2b).
* :mod:`repro.circuits.robust_driver` — the regulated, VDD-insensitive
  current driver defense (Fig. 9b).
* :mod:`repro.circuits.comparator` — the comparator that replaces the first
  inverter in the hardened Axon-Hillock neuron (Fig. 10a).
* :mod:`repro.circuits.bandgap` — supply-insensitive reference models used by
  the threshold-hardening defense.
* :mod:`repro.circuits.crossbar` — the parameterised crossbar SNN layer
  (Fig. 8 regime) exercising the large-N sparse engine tier.
"""

from repro.circuits.inverter import (
    InverterSizing,
    add_inverter,
    build_inverter,
    switching_threshold,
    threshold_vs_vdd,
)
from repro.circuits.ota import OTASizing, add_five_transistor_ota, build_ota_testbench
from repro.circuits.current_driver import (
    CurrentDriverDesign,
    amplitude_vs_vdd,
    build_current_driver,
    output_current,
    spike_train_response,
)
from repro.circuits.axon_hillock import (
    AxonHillockDesign,
    build_axon_hillock,
    default_input_spike_train,
    simulate_axon_hillock,
    simulate_axon_hillock_sweep,
)
from repro.circuits.if_neuron import (
    IFNeuronDesign,
    build_if_neuron,
    simulate_if_neuron,
)
from repro.circuits.robust_driver import (
    RobustDriverDesign,
    build_robust_driver,
)
from repro.circuits.comparator import (
    ComparatorDesign,
    build_comparator,
    trip_point,
    trip_point_vs_vdd,
)
from repro.circuits.bandgap import (
    BandgapReferenceModel,
    build_diode_reference,
    diode_reference_voltage,
    reference_vs_vdd,
)
from repro.circuits.crossbar import (
    CROSSBAR_SCALING_SIZES,
    CrossbarLayerDesign,
    build_crossbar_layer,
    crossbar_spike_counts,
    simulate_crossbar_layer,
)

__all__ = [
    "InverterSizing",
    "add_inverter",
    "build_inverter",
    "switching_threshold",
    "threshold_vs_vdd",
    "OTASizing",
    "add_five_transistor_ota",
    "build_ota_testbench",
    "CurrentDriverDesign",
    "amplitude_vs_vdd",
    "build_current_driver",
    "output_current",
    "spike_train_response",
    "AxonHillockDesign",
    "build_axon_hillock",
    "default_input_spike_train",
    "simulate_axon_hillock",
    "simulate_axon_hillock_sweep",
    "IFNeuronDesign",
    "build_if_neuron",
    "simulate_if_neuron",
    "RobustDriverDesign",
    "build_robust_driver",
    "ComparatorDesign",
    "build_comparator",
    "trip_point",
    "trip_point_vs_vdd",
    "BandgapReferenceModel",
    "build_diode_reference",
    "diode_reference_voltage",
    "reference_vs_vdd",
    "CROSSBAR_SCALING_SIZES",
    "CrossbarLayerDesign",
    "build_crossbar_layer",
    "crossbar_spike_counts",
    "simulate_crossbar_layer",
]
