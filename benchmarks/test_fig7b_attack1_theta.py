"""Fig. 7b — Attack 1: accuracy vs per-spike membrane-charge (theta) change.

The paper finds the classification accuracy stays within about ±2 % of the
baseline for driver corruptions of ±20 % (worst case −1.5 %).

Thin wrapper over the ``fig7b`` registry entry (``python -m repro run fig7b``).
"""

from repro.figures import get_figure


def test_fig7b_attack1_theta_sweep(benchmark, figure_context, baseline_accuracy):
    result = benchmark.pedantic(
        get_figure("fig7b").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    assert result.metrics["baseline_accuracy"] == baseline_accuracy
    # The driver-only attack must stay far from the catastrophic (-85 %)
    # regime of Attacks 3-5.  The paper reports ±2 % at its 1000-image scale;
    # the reduced benchmark scale re-trains per point with ~100 evaluation
    # images, which carries noticeably more run-to-run noise, so the bound
    # here only excludes a qualitative accuracy collapse.
    assert result.metrics["worst_relative_degradation"] < 0.3
