"""The SNN simulation engine and recording monitors."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.snn.nodes import InputNodes, Nodes
from repro.snn.topology import Connection
from repro.utils.validation import check_positive


class _BufferedMonitor:
    """Base recorder writing into a preallocated ``(capacity, n)`` buffer.

    The buffer is sized up front from the run's ``time_steps`` (see
    :meth:`Network.run`, which calls :meth:`reserve`) instead of growing a
    Python list that is re-stacked on every read; standalone ``record()``
    calls still work through the growth fallback.  ``reset()`` keeps the
    allocation, so monitors re-used across presentations (the pipeline's
    per-example loop) never reallocate.
    """

    _dtype: type = float

    def __init__(self, layer_name: str) -> None:
        self.layer_name = layer_name
        self._buffer: Optional[np.ndarray] = None
        self._length = 0

    def reserve(self, time_steps: int, nodes: Nodes) -> None:
        """Guarantee capacity for ``time_steps`` further records."""
        needed = self._length + max(int(time_steps), 1)
        if (
            self._buffer is not None
            and self._buffer.shape[1] != nodes.n
            and self._length
        ):
            raise ValueError(
                f"monitor on {self.layer_name!r} saw layers of different sizes"
            )
        if self._buffer is None or self._buffer.shape[1] != nodes.n:
            self._buffer = np.zeros((needed, nodes.n), dtype=self._dtype)
        elif self._buffer.shape[0] < needed:
            grown = np.zeros(
                (max(needed, 2 * self._buffer.shape[0]), nodes.n), dtype=self._dtype
            )
            grown[: self._length] = self._buffer[: self._length]
            self._buffer = grown

    def _append(self, values: np.ndarray, nodes: Nodes) -> None:
        if self._buffer is None or self._length >= self._buffer.shape[0]:
            self.reserve(max(64, self._length), nodes)
        self._buffer[self._length] = values
        self._length += 1

    def get(self) -> np.ndarray:
        """Recorded window of shape ``(time_steps, n_neurons)``."""
        if self._length == 0:
            return np.zeros((0, 0), dtype=self._dtype)
        return self._buffer[: self._length].copy()

    def reset(self) -> None:
        """Discard all recorded data (the buffer is kept for reuse)."""
        self._length = 0


class SpikeMonitor(_BufferedMonitor):
    """Records the spike raster of one layer."""

    _dtype = bool

    def record(self, nodes: Nodes) -> None:
        """Store a copy of the layer's current spikes."""
        self._append(nodes.spikes, nodes)

    def spike_counts(self) -> np.ndarray:
        """Total spikes per neuron over the recorded window."""
        if self._length == 0:
            return np.zeros(0, dtype=int)
        return self._buffer[: self._length].sum(axis=0)


class StateMonitor(_BufferedMonitor):
    """Records an arbitrary state variable (e.g. ``v`` or ``theta``) of a layer."""

    _dtype = float

    def __init__(self, layer_name: str, variable: str) -> None:
        super().__init__(layer_name)
        self.variable = variable

    def record(self, nodes: Nodes) -> None:
        """Store a copy of the monitored variable."""
        self._append(np.asarray(getattr(nodes, self.variable), dtype=float), nodes)


class Network:
    """A collection of node groups wired by connections.

    The network is advanced synchronously: at every time step the input
    layers receive their encoded spikes, every connection converts its
    source's current spikes into post-synaptic drive, every non-input layer
    integrates its total drive, and plasticity rules are applied.

    Parameters
    ----------
    dt:
        Simulation step in milliseconds (must match the node groups).
    """

    def __init__(self, dt: float = 1.0) -> None:
        self.dt = check_positive(dt, "dt")
        self.layers: Dict[str, Nodes] = {}
        self.connections: Dict[Tuple[str, str], Connection] = {}
        self.monitors: Dict[str, object] = {}
        self.learning = True

    # ------------------------------------------------------------ construction
    def add_layer(self, name: str, nodes: Nodes) -> Nodes:
        """Register a node group under ``name``."""
        if name in self.layers:
            raise ValueError(f"layer {name!r} already exists")
        self.layers[name] = nodes
        return nodes

    def add_connection(self, source: str, target: str, connection: Connection) -> Connection:
        """Register a connection from layer ``source`` to layer ``target``."""
        for name in (source, target):
            if name not in self.layers:
                raise KeyError(f"unknown layer {name!r}")
        if connection.source is not self.layers[source]:
            raise ValueError("connection.source does not match the named source layer")
        if connection.target is not self.layers[target]:
            raise ValueError("connection.target does not match the named target layer")
        self.connections[(source, target)] = connection
        return connection

    def add_monitor(self, name: str, monitor) -> object:
        """Register a spike or state monitor."""
        if monitor.layer_name not in self.layers:
            raise KeyError(f"unknown layer {monitor.layer_name!r}")
        self.monitors[name] = monitor
        return monitor

    # -------------------------------------------------------------- simulation
    def set_learning(self, learning: bool) -> None:
        """Globally enable or disable plasticity and threshold adaptation."""
        self.learning = bool(learning)
        for nodes in self.layers.values():
            nodes.learning = self.learning

    def run(
        self,
        inputs: Dict[str, np.ndarray],
        time_steps: Optional[int] = None,
    ) -> None:
        """Advance the network.

        Parameters
        ----------
        inputs:
            Mapping from input-layer name to a boolean spike raster of shape
            ``(time_steps, layer.n)``.
        time_steps:
            Number of steps to run (inferred from the inputs when omitted).
        """
        if time_steps is None:
            if not inputs:
                raise ValueError("time_steps must be given when there are no inputs")
            time_steps = len(next(iter(inputs.values())))
        for name, raster in inputs.items():
            layer = self.layers.get(name)
            if layer is None:
                raise KeyError(f"unknown input layer {name!r}")
            if not isinstance(layer, InputNodes):
                raise TypeError(f"layer {name!r} is not an InputNodes group")
            if raster.shape != (time_steps, layer.n):
                raise ValueError(
                    f"input raster for {name!r} must have shape "
                    f"({time_steps}, {layer.n}), got {raster.shape}"
                )

        non_input_layers = [
            (name, nodes)
            for name, nodes in self.layers.items()
            if not isinstance(nodes, InputNodes)
        ]

        # Size the monitor buffers once for the whole run (custom monitors
        # without reserve() still work via the record-time growth fallback).
        for monitor in self.monitors.values():
            reserve = getattr(monitor, "reserve", None)
            if callable(reserve):
                reserve(time_steps, self.layers[monitor.layer_name])

        for t in range(time_steps):
            # 1. Present the encoded input spikes.
            for name, raster in inputs.items():
                input_layer = self.layers[name]
                input_layer.set_spikes(raster[t])
                input_layer.update_traces()

            # 2. Accumulate synaptic drive from the current source spikes.
            drive = {name: np.zeros(nodes.n) for name, nodes in non_input_layers}
            for (source, target), connection in self.connections.items():
                if target in drive:
                    drive[target] += connection.compute()

            # 3. Integrate and fire.
            for name, nodes in non_input_layers:
                nodes.step(drive[name])

            # 4. Plasticity.
            for connection in self.connections.values():
                connection.update(learning=self.learning)

            # 5. Recording.
            for monitor in self.monitors.values():
                monitor.record(self.layers[monitor.layer_name])

    # ------------------------------------------------------------------- state
    def reset_state_variables(self) -> None:
        """Reset per-example dynamic state in every layer and monitor."""
        for nodes in self.layers.values():
            nodes.reset_state_variables()
        for connection in self.connections.values():
            connection.reset_state_variables()

    def reset_monitors(self) -> None:
        """Clear all monitor recordings."""
        for monitor in self.monitors.values():
            monitor.reset()

    def normalize_connections(self) -> None:
        """Apply per-target weight normalisation on every connection that has one."""
        for connection in self.connections.values():
            connection.normalize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(layers={list(self.layers)}, "
            f"connections={list(self.connections)})"
        )
