"""Tests for neuron-class assignment and accuracy metrics."""

import numpy as np
import pytest

from repro.snn.evaluation import (
    all_activity_prediction,
    assign_labels,
    classification_accuracy,
    proportion_weighting_prediction,
)


def perfectly_separable_counts(n_examples_per_class=5, n_classes=3, neurons_per_class=4):
    """Each class drives its own block of neurons."""
    rng = np.random.default_rng(0)
    counts, labels = [], []
    for cls in range(n_classes):
        for _ in range(n_examples_per_class):
            row = rng.poisson(1.0, n_classes * neurons_per_class).astype(float)
            row[cls * neurons_per_class : (cls + 1) * neurons_per_class] += 20.0
            counts.append(row)
            labels.append(cls)
    return np.array(counts), np.array(labels)


def test_assign_labels_recovers_block_structure():
    counts, labels = perfectly_separable_counts()
    assignments, rates = assign_labels(counts, labels, 3)
    expected = np.repeat(np.arange(3), 4)
    assert np.array_equal(assignments, expected)
    assert rates.shape == (3, 12)


def test_all_activity_prediction_perfect_on_separable_data():
    counts, labels = perfectly_separable_counts()
    assignments, _ = assign_labels(counts, labels, 3)
    predictions = all_activity_prediction(counts, assignments, 3)
    assert classification_accuracy(predictions, labels) == 1.0


def test_proportion_weighting_perfect_on_separable_data():
    counts, labels = perfectly_separable_counts()
    assignments, rates = assign_labels(counts, labels, 3)
    predictions = proportion_weighting_prediction(counts, assignments, rates, 3)
    assert classification_accuracy(predictions, labels) == 1.0


def test_silent_network_gives_chance_level_predictions():
    counts = np.zeros((30, 12))
    labels = np.repeat(np.arange(3), 10)
    assignments, _ = assign_labels(np.ones((30, 12)), labels, 3)
    predictions = all_activity_prediction(counts, assignments, 3)
    accuracy = classification_accuracy(predictions, labels)
    assert accuracy <= 0.5  # degenerate predictions collapse to one class


def test_assign_labels_handles_missing_class():
    counts = np.ones((4, 5))
    labels = np.array([0, 0, 1, 1])
    assignments, rates = assign_labels(counts, labels, n_classes=3)
    assert rates[2].sum() == 0.0
    assert set(assignments.tolist()) <= {0, 1}


def test_validation_errors():
    with pytest.raises(ValueError):
        assign_labels(np.ones((3, 4)), np.zeros(2), 2)
    with pytest.raises(ValueError):
        assign_labels(np.ones(3), np.zeros(3), 2)
    with pytest.raises(ValueError):
        all_activity_prediction(np.ones(3), np.zeros(3), 2)
    with pytest.raises(ValueError):
        classification_accuracy(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        classification_accuracy(np.zeros(0), np.zeros(0))


def test_accuracy_simple_counts():
    assert classification_accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)
