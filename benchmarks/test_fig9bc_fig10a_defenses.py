"""Fig. 9b, 9c & 10a — circuit-level defenses.

* Fig. 9b: the robust (op-amp regulated) current driver keeps the input spike
  amplitude flat across the supply range.
* Fig. 9c: up-sizing the Axon-Hillock first-inverter device shrinks the
  threshold change at 0.8 V (paper: −18 % → −5.23 % at 32:1), and the
  corresponding accuracy degradation drops from catastrophic to a few percent.
* Fig. 10a: the reference-biased comparator pins the threshold entirely.
"""

import numpy as np

from repro.defenses import (
    ComparatorNeuronDefense,
    DefenseAccuracyEvaluator,
    RobustDriverDefense,
    SizingDefense,
)
from repro.utils.tables import format_table

VDD_VALUES = (0.8, 0.9, 1.0, 1.1, 1.2)
SIZING_FACTORS = (1, 2, 4, 8, 16, 32)


def test_fig9b_robust_driver_flatness(benchmark):
    defense = RobustDriverDefense()

    def run():
        return [
            (vdd, defense.undefended_theta_scale(vdd) - 1.0, defense.residual_theta_change(vdd))
            for vdd in VDD_VALUES
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        format_table(
            ["VDD (V)", "unprotected amplitude change", "robust-driver amplitude change"],
            rows,
            title="Fig. 9b — robust current driver",
        )
    )
    assert all(abs(row[2]) < 0.01 for row in rows)
    assert max(abs(row[1]) for row in rows) > 0.25


def test_fig9c_sizing_defense_threshold_and_accuracy(benchmark, pipeline, baseline_accuracy):
    defense = SizingDefense()
    evaluator = DefenseAccuracyEvaluator(pipeline)

    def run():
        points = defense.sweep(SIZING_FACTORS, vdd=0.8)
        # Accuracy recovered by the largest up-sizing, evaluated by running the
        # Attack-4 experiment with the residual (defended) threshold scale;
        # the evaluator submits defended + undefended + baseline as one
        # executor batch (baseline served from cache).
        residual_scale = defense.residual_threshold_scale(SIZING_FACTORS[-1], 0.8)
        point = evaluator.evaluate_threshold_defenses(
            {"32x sizing": residual_scale - 1.0}, undefended_change=-0.2
        )[0]
        return points, point.defended, point.undefended

    points, defended, undefended = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        format_table(
            ["W/L factor", "nominal threshold (V)", "threshold @0.8V (V)", "change"],
            [point.as_row() for point in points],
            title="Fig. 9c — Axon-Hillock sizing defense (threshold sensitivity)",
        )
    )
    print(
        format_table(
            ["case", "accuracy", "relative degradation"],
            [
                ("undefended (-20% threshold)", undefended.accuracy,
                 f"{undefended.relative_degradation:.1%}"),
                (f"defended (32x sizing, residual {points[-1].threshold_change:+.1%})",
                 defended.accuracy, f"{defended.relative_degradation:.1%}"),
                ("baseline", baseline_accuracy, "0.0%"),
            ],
            title="Fig. 9c — accuracy recovery",
        )
    )
    assert abs(points[-1].threshold_change) < abs(points[0].threshold_change) / 2
    assert defended.accuracy > undefended.accuracy
    assert defended.relative_degradation < 0.25


def test_fig10a_comparator_defense(benchmark):
    defense = ComparatorNeuronDefense()

    def run():
        return [
            (vdd, defense.undefended_threshold_scale(vdd), defense.threshold_scale(vdd))
            for vdd in VDD_VALUES
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        format_table(
            ["VDD (V)", "inverter threshold scale", "comparator threshold scale"],
            rows,
            title="Fig. 10a — comparator-based threshold hardening",
        )
    )
    defended = np.array([row[2] for row in rows])
    undefended = np.array([row[1] for row in rows])
    assert np.ptp(defended) < 0.02
    assert np.ptp(undefended) > 0.2
