"""Fig. 9a — Attack 5: black-box manipulation of the shared supply.

The adversary only picks the supply voltage; the induced theta and threshold
corruption come from the circuit-calibrated VDD map.  The paper reports a
worst-case accuracy degradation of −84.93 %.

Thin wrapper over the ``fig9a`` registry entry (``python -m repro run fig9a``).
"""

from repro.figures import get_figure


def test_fig9a_attack5_global_vdd(benchmark, figure_context, baseline_accuracy):
    result = benchmark.pedantic(
        get_figure("fig9a").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    # Nominal supply point is exactly the baseline.
    assert result.metrics["accuracy_at_nominal"] == baseline_accuracy
    # Under-volting collapses accuracy (paper: -84.93 % relative).
    assert result.metrics["relative_degradation_at_0v8"] > 0.6
