"""Fig. 9b, 9c & 10a — circuit-level defenses.

* Fig. 9b: the robust (op-amp regulated) current driver keeps the input spike
  amplitude flat across the supply range.
* Fig. 9c: up-sizing the Axon-Hillock first-inverter device shrinks the
  threshold change at 0.8 V (paper: −18 % → −5.23 % at 32:1), and the
  corresponding accuracy degradation drops from catastrophic to a few percent.
* Fig. 10a: the reference-biased comparator pins the threshold entirely.

Thin wrappers over the ``fig9b``/``fig9c``/``fig10a`` registry entries
(``python -m repro run fig9b fig9c fig10a``).
"""

from repro.figures import get_figure


def test_fig9b_robust_driver_flatness(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("fig9b").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    assert result.metrics["max_defended_change"] < 0.01
    assert result.metrics["max_undefended_change"] > 0.25


def test_fig9c_sizing_defense_threshold_and_accuracy(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("fig9c").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    metrics = result.metrics
    assert abs(metrics["threshold_change_32x"]) < abs(metrics["threshold_change_1x"]) / 2
    assert metrics["defended_accuracy"] > metrics["undefended_accuracy"]
    assert metrics["defended_relative_degradation"] < 0.25


def test_fig10a_comparator_defense(benchmark, figure_context):
    result = benchmark.pedantic(
        get_figure("fig10a").run, args=(figure_context,), rounds=1, iterations=1
    )
    print(result.render())
    assert result.metrics["defended_ptp"] < 0.02
    assert result.metrics["undefended_ptp"] > 0.2
