"""The Diehl & Cook (2015) unsupervised digit-classification SNN.

Architecture (paper Fig. 7a):

* **Input layer** — one node per pixel, Poisson-encoded intensities.
* **Excitatory layer (EL)** — adaptive-threshold LIF neurons, all-to-all
  plastic synapses from the input (PostPre STDP, per-target normalisation).
* **Inhibitory layer (IL)** — LIF neurons; each excitatory neuron drives its
  own inhibitory partner one-to-one, and each inhibitory neuron inhibits
  every excitatory neuron except its partner (soft winner-take-all).

The attack experiments corrupt the EL/IL thresholds and the input drive of
this network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.snn.learning import PostPre, WeightDependentPostPre
from repro.snn.network import Network, SpikeMonitor
from repro.snn.nodes import AdaptiveLIFNodes, InputNodes, LIFNodes
from repro.snn.topology import (
    Connection,
    lateral_inhibition_weights,
    one_to_one_weights,
)
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive

#: Canonical layer names used throughout the attack framework.
INPUT_LAYER = "input"
EXCITATORY_LAYER = "excitatory"
INHIBITORY_LAYER = "inhibitory"


@dataclass
class DiehlAndCookParameters:
    """Hyper-parameters of the Diehl&Cook network.

    Defaults follow the BindsNET ``DiehlAndCook2015`` configuration the paper
    builds on: 100 neurons per layer, all-to-all plastic input synapses with
    per-target normalisation, strong one-to-one excitation and lateral
    inhibition.  The paper quotes the learning rates it passes to BindsNET's
    batch-32 trainer (0.0004 / 0.0002); this NumPy implementation updates
    weights per sample, for which the BindsNET example defaults
    ``nu = (1e-4, 1e-2)`` reproduce the same ~76 % baseline accuracy (see
    EXPERIMENTS.md).
    """

    n_inputs: int = 784
    n_neurons: int = 100
    excitatory_strength: float = 22.5
    inhibitory_strength: float = 120.0
    nu_pre: float = 1e-4
    nu_post: float = 1e-2
    wmax: float = 1.0
    norm: float = 78.4
    dt: float = 1.0
    theta_plus: float = 0.05
    #: How threshold corruptions are applied; see
    #: :class:`repro.snn.nodes.LIFNodes` ("signed_value" reproduces the paper,
    #: "rest_gap" is the physically-motivated alternative used in ablations).
    threshold_convention: str = "signed_value"

    def __post_init__(self) -> None:
        check_positive(self.n_inputs, "n_inputs")
        check_positive(self.n_neurons, "n_neurons")
        check_positive(self.excitatory_strength, "excitatory_strength")
        check_positive(self.inhibitory_strength, "inhibitory_strength")
        check_positive(self.wmax, "wmax")
        check_positive(self.norm, "norm")
        check_positive(self.dt, "dt")


class DiehlAndCook2015(Network):
    """The three-layer Diehl&Cook network with convenient accessors."""

    def __init__(
        self,
        parameters: DiehlAndCookParameters | None = None,
        *,
        rng: SeedLike = None,
    ) -> None:
        parameters = parameters or DiehlAndCookParameters()
        super().__init__(dt=parameters.dt)
        self.parameters = parameters
        rng = ensure_rng(rng, name="diehl_cook_init")

        input_layer = InputNodes(parameters.n_inputs, dt=parameters.dt)
        excitatory = AdaptiveLIFNodes(
            parameters.n_neurons,
            dt=parameters.dt,
            theta_plus=parameters.theta_plus,
            threshold_convention=parameters.threshold_convention,
        )
        inhibitory = LIFNodes(
            parameters.n_neurons,
            dt=parameters.dt,
            threshold_convention=parameters.threshold_convention,
        )
        self.add_layer(INPUT_LAYER, input_layer)
        self.add_layer(EXCITATORY_LAYER, excitatory)
        self.add_layer(INHIBITORY_LAYER, inhibitory)

        input_excitatory = Connection(
            input_layer,
            excitatory,
            w=parameters.wmax * 0.3 * rng.random((parameters.n_inputs, parameters.n_neurons)),
            wmin=0.0,
            wmax=parameters.wmax,
            norm=parameters.norm,
            update_rule=PostPre(nu_pre=parameters.nu_pre, nu_post=parameters.nu_post),
        )
        excitatory_inhibitory = Connection(
            excitatory,
            inhibitory,
            w=one_to_one_weights(parameters.n_neurons, parameters.excitatory_strength),
            wmin=0.0,
            wmax=parameters.excitatory_strength,
        )
        inhibitory_excitatory = Connection(
            inhibitory,
            excitatory,
            w=lateral_inhibition_weights(
                parameters.n_neurons, -parameters.inhibitory_strength
            ),
            wmin=-parameters.inhibitory_strength,
            wmax=0.0,
        )
        self.add_connection(INPUT_LAYER, EXCITATORY_LAYER, input_excitatory)
        self.add_connection(EXCITATORY_LAYER, INHIBITORY_LAYER, excitatory_inhibitory)
        self.add_connection(INHIBITORY_LAYER, EXCITATORY_LAYER, inhibitory_excitatory)

        self.add_monitor("excitatory_spikes", SpikeMonitor(EXCITATORY_LAYER))

    # ------------------------------------------------------------- accessors
    @property
    def input_layer(self) -> InputNodes:
        """The Poisson-encoded input layer."""
        return self.layers[INPUT_LAYER]

    @property
    def excitatory_layer(self) -> AdaptiveLIFNodes:
        """The excitatory (EL) layer attacked in Attack 2."""
        return self.layers[EXCITATORY_LAYER]

    @property
    def inhibitory_layer(self) -> LIFNodes:
        """The inhibitory (IL) layer attacked in Attack 3."""
        return self.layers[INHIBITORY_LAYER]

    @property
    def input_connection(self) -> Connection:
        """The plastic input→excitatory projection."""
        return self.connections[(INPUT_LAYER, EXCITATORY_LAYER)]

    @property
    def excitatory_monitor(self) -> SpikeMonitor:
        """The spike monitor on the excitatory layer."""
        return self.monitors["excitatory_spikes"]

    # ------------------------------------------------------------ convenience
    def present(
        self,
        spike_raster: np.ndarray,
        *,
        learning: bool = True,
        normalize: bool = True,
    ) -> np.ndarray:
        """Present one encoded example and return the EL spike counts.

        The excitatory spike-count vector is the feature used for label
        assignment and classification.
        """
        self.set_learning(learning)
        if normalize and learning:
            self.input_connection.normalize()
        self.excitatory_monitor.reset()
        self.reset_state_variables()
        self.run({INPUT_LAYER: spike_raster})
        return self.excitatory_monitor.spike_counts()


# --------------------------------------------------------------------------
# Model-variant registry.
#
# Small builders covering every architecture/learning/threshold-convention
# combination this package ships.  The batched-engine parity suite
# (tests/test_snn_batched.py) and the SNN hot-path benchmark iterate this
# registry, so a new model added here is automatically held to the
# batched-vs-scalar bit-parity contract.
# --------------------------------------------------------------------------


def _diehl_cook_variant(threshold_convention: str) -> Callable[[SeedLike], Network]:
    def build(rng: SeedLike = None) -> Network:
        parameters = DiehlAndCookParameters(
            n_inputs=36,
            n_neurons=12,
            norm=30.0,
            threshold_convention=threshold_convention,
        )
        return DiehlAndCook2015(parameters, rng=rng)

    return build


def _lif_feedforward(rng: SeedLike = None) -> Network:
    """A plain LIF readout driven by a plastic all-to-all projection."""
    generator = ensure_rng(rng, name="lif_feedforward")
    network = Network()
    source = network.add_layer("input", InputNodes(24))
    target = network.add_layer("readout", LIFNodes(8))
    network.add_connection(
        "input",
        "readout",
        Connection(
            source,
            target,
            w=12.0 * generator.random((24, 8)),
            wmin=0.0,
            wmax=12.0,
            norm=40.0,
            update_rule=PostPre(nu_pre=1e-3, nu_post=1e-2),
        ),
    )
    network.add_monitor("readout_spikes", SpikeMonitor("readout"))
    return network


def _weight_dependent_feedforward(rng: SeedLike = None) -> Network:
    """The soft-bounded STDP variant over an adaptive-threshold readout."""
    generator = ensure_rng(rng, name="weight_dependent")
    network = Network()
    source = network.add_layer("input", InputNodes(24))
    target = network.add_layer("readout", AdaptiveLIFNodes(8))
    network.add_connection(
        "input",
        "readout",
        Connection(
            source,
            target,
            w=12.0 * generator.random((24, 8)),
            wmin=0.0,
            wmax=12.0,
            norm=40.0,
            update_rule=WeightDependentPostPre(nu_pre=1e-3, nu_post=1e-2),
        ),
    )
    network.add_monitor("readout_spikes", SpikeMonitor("readout"))
    return network


#: name -> builder(rng) for every registered model variant.
MODEL_VARIANTS: Dict[str, Callable[[SeedLike], Network]] = {
    "diehl_cook_signed_value": _diehl_cook_variant("signed_value"),
    "diehl_cook_rest_gap": _diehl_cook_variant("rest_gap"),
    "lif_feedforward_postpre": _lif_feedforward,
    "adaptive_weight_dependent": _weight_dependent_feedforward,
}
