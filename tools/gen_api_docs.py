#!/usr/bin/env python
"""Generate the markdown API reference for ``repro`` under ``docs/api/``.

Stdlib-only on purpose: the repository's only hard runtime dependency is
NumPy, and the docs build must run in the same minimal environment as the
test suite (pdoc/sphinx would do this job too, but would be the only build
step needing an extra tool).  The generator imports every module under
``src/repro`` — an import error is a build error — and emits one markdown
page per module: the module docstring, then every public class (with its
public methods and properties) and public function with signatures and
docstrings.

``--check`` additionally enforces docstring coverage on the API-critical
modules (``repro.scenarios``, ``repro.exec``, ``repro.snn.batched``,
``repro.snn.snapshot``, ``repro.snn.serving``, ``repro.analog.compiled``,
``repro.analog.sparse``, ``repro.circuits.crossbar``): any public
function, class, method or property there without a docstring fails the
build.  The ``docs`` CI job
runs ``python tools/gen_api_docs.py --out docs/api --check``.

Usage::

    PYTHONPATH=src python tools/gen_api_docs.py --out docs/api [--check]
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: The package documented.
ROOT_PACKAGE = "repro"

#: Module prefixes whose public API must be fully docstring-covered.
COVERAGE_TARGETS = (
    "repro.scenarios",
    "repro.exec",
    "repro.snn.batched",
    "repro.snn.snapshot",
    "repro.snn.serving",
    "repro.analog.compiled",
    "repro.analog.sparse",
    "repro.circuits.crossbar",
)


def iter_module_names() -> List[str]:
    """Every importable module name under :data:`ROOT_PACKAGE`, sorted."""
    package = importlib.import_module(ROOT_PACKAGE)
    names = [ROOT_PACKAGE]
    for info in pkgutil.walk_packages(package.__path__, prefix=f"{ROOT_PACKAGE}."):
        names.append(info.name)
    return sorted(names)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _first_paragraph(doc: str) -> str:
    lines = []
    for line in (doc or "").strip().splitlines():
        if not line.strip():
            break
        lines.append(line.strip())
    return " ".join(lines)


def _own_members(cls) -> List[Tuple[str, object]]:
    """Public methods/properties defined on ``cls`` itself (not inherited)."""
    members = []
    for name, member in sorted(vars(cls).items()):
        if not _is_public(name):
            continue
        if isinstance(member, property):
            members.append((name, member))
        elif isinstance(member, (staticmethod, classmethod)):
            members.append((name, member.__func__))
        elif inspect.isfunction(member):
            members.append((name, member))
    return members


def document_module(name: str) -> Tuple[str, List[str]]:
    """Render one module's markdown page; returns (text, missing_docstrings).

    ``missing_docstrings`` lists the fully-qualified public names without a
    docstring, for the coverage check.
    """
    module = importlib.import_module(name)
    missing: List[str] = []
    lines: List[str] = [f"# `{name}`", ""]
    doc = inspect.getdoc(module)
    if doc:
        lines += [doc, ""]
    else:
        missing.append(name)

    classes = []
    functions = []
    for attr_name, member in sorted(vars(module).items()):
        if not _is_public(attr_name):
            continue
        if inspect.isclass(member) and member.__module__ == name:
            classes.append((attr_name, member))
        elif inspect.isfunction(member) and member.__module__ == name:
            functions.append((attr_name, member))

    if classes:
        lines += ["## Classes", ""]
        for class_name, cls in classes:
            lines.append(f"### `{class_name}{_signature(cls)}`")
            lines.append("")
            class_doc = inspect.getdoc(cls)
            if class_doc:
                lines += [class_doc, ""]
            else:
                missing.append(f"{name}.{class_name}")
            for member_name, member in _own_members(cls):
                if isinstance(member, property):
                    lines.append(f"- **`{member_name}`** *(property)*")
                    member_doc = inspect.getdoc(member.fget) if member.fget else None
                else:
                    lines.append(f"- **`{member_name}{_signature(member)}`**")
                    member_doc = inspect.getdoc(member)
                if member_doc:
                    lines.append(f"  — {_first_paragraph(member_doc)}")
                else:
                    missing.append(f"{name}.{class_name}.{member_name}")
            lines.append("")

    if functions:
        lines += ["## Functions", ""]
        for function_name, function in functions:
            lines.append(f"### `{function_name}{_signature(function)}`")
            lines.append("")
            function_doc = inspect.getdoc(function)
            if function_doc:
                lines += [function_doc, ""]
            else:
                missing.append(f"{name}.{function_name}")

    return "\n".join(lines).rstrip() + "\n", missing


def build(out_dir: Path) -> Dict[str, List[str]]:
    """Generate every page plus the index; returns name → missing docstrings."""
    out_dir.mkdir(parents=True, exist_ok=True)
    coverage: Dict[str, List[str]] = {}
    pages = []
    for name in iter_module_names():
        text, missing = document_module(name)
        coverage[name] = missing
        file_name = name.replace(".", "_") + ".md"
        (out_dir / file_name).write_text(text, encoding="utf-8")
        pages.append((name, file_name))

    index = ["# `repro` API reference", ""]
    index.append(
        "Generated by `tools/gen_api_docs.py` from the docstrings under "
        "`src/repro`. Regenerate with:"
    )
    index += [
        "",
        "```bash",
        "PYTHONPATH=src python tools/gen_api_docs.py --out docs/api",
        "```",
        "",
    ]
    for name, file_name in pages:
        module = importlib.import_module(name)
        summary = _first_paragraph(inspect.getdoc(module) or "")
        index.append(f"- [`{name}`]({file_name}) — {summary}")
    (out_dir / "index.md").write_text("\n".join(index) + "\n", encoding="utf-8")
    return coverage


def check_coverage(coverage: Dict[str, List[str]]) -> List[str]:
    """Missing docstrings inside the enforced targets (empty = pass)."""
    failures = []
    for name, missing in sorted(coverage.items()):
        if not any(
            name == target or name.startswith(target + ".")
            for target in COVERAGE_TARGETS
        ):
            continue
        failures.extend(missing)
    return failures


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="docs/api", metavar="DIR", help="output directory"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on public API without docstrings in the enforced modules",
    )
    args = parser.parse_args(argv)
    try:
        coverage = build(Path(args.out))
    except Exception as error:  # noqa: BLE001 - any import/render error fails the build
        print(f"docs build failed: {type(error).__name__}: {error}", file=sys.stderr)
        return 1
    n_pages = len(coverage) + 1
    print(f"wrote {n_pages} pages to {args.out}")
    if args.check:
        failures = check_coverage(coverage)
        if failures:
            print(
                f"{len(failures)} public API member(s) missing docstrings:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("docstring coverage OK for " + ", ".join(COVERAGE_TARGETS))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
