"""Five-transistor operational transconductance amplifier (OTA).

The voltage-amplifier I&F neuron (paper Fig. 2b) "employs a 5-transistor
amplifier that offers better control over the threshold voltage"; the same
cell is reused as the comparator in the Axon-Hillock hardening defense
(Fig. 10a) and as the error amplifier of the robust current driver (Fig. 9b).

Topology (classic 5T OTA):

* NMOS differential pair ``M_INP`` / ``M_INN`` sharing a tail node.
* NMOS tail current source ``M_TAIL`` biased by ``vbias``.
* PMOS current-mirror load ``MP_DIODE`` (diode connected) / ``MP_OUT``.
* Single-ended output taken at the drain of ``M_INP``'s counterpart.

The output rises when ``v_plus > v_minus`` (non-inverting w.r.t. ``v_plus``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analog import Circuit
from repro.analog.mosfet import MOSFETParameters, NMOS_65NM, PMOS_65NM
from repro.utils.validation import check_positive


@dataclass
class OTASizing:
    """Geometry of the 5-transistor OTA."""

    input_width: float = 2e-6
    load_width: float = 1e-6
    tail_width: float = 1e-6
    length: float = 130e-9

    def __post_init__(self) -> None:
        for field_name in ("input_width", "load_width", "tail_width", "length"):
            check_positive(getattr(self, field_name), field_name)


def add_five_transistor_ota(
    circuit: Circuit,
    name: str,
    node_plus: str,
    node_minus: str,
    node_out: str,
    node_vdd: str,
    *,
    node_bias: str = None,
    sizing: OTASizing | None = None,
    nmos_params: MOSFETParameters = NMOS_65NM,
    pmos_params: MOSFETParameters = PMOS_65NM,
    bias_voltage: float = 0.55,
) -> None:
    """Add a 5T OTA to ``circuit``.

    If ``node_bias`` is None, a dedicated bias voltage source
    (``{name}.VBIAS``) is created at ``bias_voltage`` volts.
    """
    sizing = sizing or OTASizing()
    tail = f"{name}.tail"
    mirror = f"{name}.mirror"
    if node_bias is None:
        node_bias = f"{name}.vbias"
        circuit.add_voltage_source(f"{name}.VBIAS", node_bias, "0", bias_voltage)

    # Tail current source.
    circuit.add_mosfet(
        f"{name}.M_TAIL",
        tail,
        node_bias,
        "0",
        nmos_params,
        width=sizing.tail_width,
        length=sizing.length,
    )
    # Differential pair: the positive input steers current into the diode
    # branch, which the mirror copies to the output branch, raising the
    # output when v_plus > v_minus.
    circuit.add_mosfet(
        f"{name}.M_INP",
        mirror,
        node_plus,
        tail,
        nmos_params,
        width=sizing.input_width,
        length=sizing.length,
    )
    circuit.add_mosfet(
        f"{name}.M_INN",
        node_out,
        node_minus,
        tail,
        nmos_params,
        width=sizing.input_width,
        length=sizing.length,
    )
    # PMOS mirror load.
    circuit.add_mosfet(
        f"{name}.MP_DIODE",
        mirror,
        mirror,
        node_vdd,
        pmos_params,
        width=sizing.load_width,
        length=sizing.length,
    )
    circuit.add_mosfet(
        f"{name}.MP_OUT",
        node_out,
        mirror,
        node_vdd,
        pmos_params,
        width=sizing.load_width,
        length=sizing.length,
    )


def build_ota_testbench(
    vdd: float = 1.0,
    *,
    v_minus: float = 0.5,
    sizing: OTASizing | None = None,
) -> Circuit:
    """Standalone OTA with sources on both inputs (for characterisation).

    Nodes: ``vdd``, ``inp``, ``inn``, ``out``.
    """
    circuit = Circuit("five_transistor_ota")
    circuit.add_voltage_source("VDD", "vdd", "0", vdd)
    circuit.add_voltage_source("VINP", "inp", "0", v_minus)
    circuit.add_voltage_source("VINN", "inn", "0", v_minus)
    add_five_transistor_ota(circuit, "OTA", "inp", "inn", "out", "vdd", sizing=sizing)
    # Small load keeps the output node well defined.
    circuit.add_capacitor("CL", "out", "0", "50f")
    circuit.add_resistor("RL", "out", "0", "100meg")
    return circuit
