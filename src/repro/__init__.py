"""Reproduction of "Analysis of Power-Oriented Fault Injection Attacks on
Spiking Neural Networks" (Nagarajan et al., DATE 2022).

The library is organised in three tiers that mirror the paper:

* **Circuit tier** -- :mod:`repro.analog` (MNA circuit simulator),
  :mod:`repro.circuits` (netlists of every circuit in the paper) and
  :mod:`repro.neurons` (fast behavioural models of the analog neurons,
  calibrated against the circuit tier).
* **Network tier** -- :mod:`repro.snn` (a NumPy spiking-neural-network
  framework with the Diehl & Cook architecture) and :mod:`repro.datasets`
  (a synthetic MNIST-like digit task).
* **Attack tier** -- :mod:`repro.attacks` (the five power-oriented fault
  injection attacks), :mod:`repro.defenses` (the proposed countermeasures)
  and :mod:`repro.core` (the experiment pipeline that regenerates every
  figure in the paper's evaluation).

Cutting across the tiers, :mod:`repro.exec` fans independent sweep
evaluations out over a process pool with result caching and timing, and the
**reproduction tier** serves the paper's figures as first-class artifacts:
:mod:`repro.figures` (the registry of every figure as a
:class:`~repro.figures.FigureSpec`), :mod:`repro.store` (schema-versioned
JSON+NPZ artifacts with provenance, plus the persistent executor cache) and
:mod:`repro.cli` (``python -m repro list|run|report`` and
``python -m repro scenarios list|run|report``).  One level above the
figures, :mod:`repro.scenarios` is the declarative threat-scenario
subsystem: an attack DSL (:class:`~repro.scenarios.ScenarioSpec`,
YAML/JSON-loadable), composite/compound faults, adaptive bisection
search, a built-in scenario library and a sharded, resumable runner —
see ``docs/architecture.md`` and ``docs/scenarios.md`` for the full
picture.
"""

from repro import (
    analog,
    attacks,
    circuits,
    core,
    datasets,
    defenses,
    exec,
    figures,
    neurons,
    scenarios,
    snn,
    store,
    utils,
)

__version__ = "1.2.0"

__all__ = [
    "analog",
    "circuits",
    "neurons",
    "snn",
    "datasets",
    "attacks",
    "defenses",
    "core",
    "exec",
    "figures",
    "scenarios",
    "store",
    "utils",
]
