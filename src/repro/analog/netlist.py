"""Circuit (netlist) construction.

A :class:`Circuit` is an ordered collection of devices connected by named
nodes.  Node ``"0"`` (aliases ``"gnd"``, ``"GND"``, ``"vss"``) is the global
ground reference.  Hierarchy is supported through :class:`SubCircuit`, which
is a reusable template instantiated into a parent circuit with a per-instance
prefix for its internal nodes and devices.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence

from repro.analog.devices import (
    Capacitor,
    CurrentSource,
    Device,
    Diode,
    Inductor,
    Resistor,
    SourceValue,
    VoltageControlledSwitch,
    VoltageSource,
)
from repro.analog.mosfet import MOSFET, MOSFETParameters
from repro.analog.units import ValueLike

#: Node names treated as the ground reference.
GROUND_ALIASES = frozenset({"0", "gnd", "GND", "vss", "VSS"})


def is_ground(node: str) -> bool:
    """Whether ``node`` names the ground reference."""
    return node in GROUND_ALIASES


class Circuit:
    """A flat collection of devices connected by named nodes.

    The class offers both a generic :meth:`add` and typed convenience
    constructors (:meth:`add_resistor`, :meth:`add_mosfet`, ...) that build
    the device and register it in one call.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._devices: List[Device] = []
        self._device_index: Dict[str, Device] = {}

    # -------------------------------------------------------------- containers
    @property
    def devices(self) -> Sequence[Device]:
        """All devices in insertion order."""
        return tuple(self._devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices)

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, name: str) -> bool:
        return name in self._device_index

    def __getitem__(self, name: str) -> Device:
        try:
            return self._device_index[name]
        except KeyError:
            raise KeyError(f"no device named {name!r} in circuit {self.name!r}") from None

    def nodes(self) -> List[str]:
        """All non-ground node names, in first-use order."""
        seen: Dict[str, None] = {}
        for device in self._devices:
            for node in device.nodes:
                if not is_ground(node) and node not in seen:
                    seen[node] = None
        return list(seen)

    # ------------------------------------------------------------ registration
    def add(self, device: Device) -> Device:
        """Register an already constructed device."""
        if device.name in self._device_index:
            raise ValueError(
                f"duplicate device name {device.name!r} in circuit {self.name!r}"
            )
        self._devices.append(device)
        self._device_index[device.name] = device
        return device

    def remove(self, name: str) -> Device:
        """Remove and return the device called ``name``."""
        device = self[name]
        self._devices.remove(device)
        del self._device_index[name]
        return device

    def replace(self, device: Device) -> Device:
        """Replace the device with the same name (must already exist)."""
        self.remove(device.name)
        return self.add(device)

    # ------------------------------------------------------- typed convenience
    def add_resistor(self, name: str, a: str, b: str, resistance: ValueLike) -> Resistor:
        """Add a resistor between nodes ``a`` and ``b``."""
        return self.add(Resistor(name, a, b, resistance))

    def add_capacitor(
        self, name: str, a: str, b: str, capacitance: ValueLike, **kwargs
    ) -> Capacitor:
        """Add a capacitor between nodes ``a`` and ``b``."""
        return self.add(Capacitor(name, a, b, capacitance, **kwargs))

    def add_inductor(self, name: str, a: str, b: str, inductance: ValueLike) -> Inductor:
        """Add an inductor between nodes ``a`` and ``b``."""
        return self.add(Inductor(name, a, b, inductance))

    def add_voltage_source(
        self, name: str, pos: str, neg: str, value: SourceValue
    ) -> VoltageSource:
        """Add an independent voltage source."""
        return self.add(VoltageSource(name, pos, neg, value))

    def add_current_source(
        self, name: str, pos: str, neg: str, value: SourceValue
    ) -> CurrentSource:
        """Add an independent current source (current flows pos -> neg)."""
        return self.add(CurrentSource(name, pos, neg, value))

    def add_diode(self, name: str, anode: str, cathode: str, **kwargs) -> Diode:
        """Add a junction diode."""
        return self.add(Diode(name, anode, cathode, **kwargs))

    def add_switch(
        self, name: str, a: str, b: str, ctrl_pos: str, ctrl_neg: str, **kwargs
    ) -> VoltageControlledSwitch:
        """Add a voltage-controlled switch."""
        return self.add(VoltageControlledSwitch(name, a, b, ctrl_pos, ctrl_neg, **kwargs))

    def add_mosfet(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        parameters: MOSFETParameters,
        *,
        width: ValueLike = 1e-6,
        length: ValueLike = 65e-9,
    ) -> MOSFET:
        """Add a MOSFET (drain, gate, source; body tied to source)."""
        return self.add(
            MOSFET(name, drain, gate, source, parameters, width=width, length=length)
        )

    # --------------------------------------------------------------- hierarchy
    def instantiate(
        self,
        subcircuit: "SubCircuit",
        instance_name: str,
        port_map: Dict[str, str],
    ) -> List[Device]:
        """Instantiate ``subcircuit`` into this circuit.

        ``port_map`` maps the subcircuit's port names to parent node names.
        Internal nodes and device names are prefixed with ``instance_name.``.
        Returns the list of devices added.
        """
        return subcircuit.instantiate_into(self, instance_name, port_map)

    # ----------------------------------------------------------------- utility
    def source_names(self) -> List[str]:
        """Names of all independent sources (voltage and current)."""
        return [
            d.name
            for d in self._devices
            if isinstance(d, (VoltageSource, CurrentSource))
        ]

    def set_source_value(self, name: str, value: SourceValue) -> None:
        """Change the value/waveform of an independent source."""
        device = self[name]
        if not isinstance(device, (VoltageSource, CurrentSource)):
            raise TypeError(f"device {name!r} is not an independent source")
        device.value = value

    def copy(self) -> "Circuit":
        """Shallow copy (devices are shared; the container is new)."""
        clone = Circuit(self.name)
        for device in self._devices:
            clone.add(device)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Circuit({self.name!r}, devices={len(self._devices)})"


class SubCircuit:
    """A reusable circuit template with named ports.

    A subcircuit is defined by a builder function that populates a circuit
    using the *port* node names plus any internal nodes it likes.  When the
    subcircuit is instantiated, ports are renamed to the parent's nodes and
    everything else is prefixed with the instance name.
    """

    def __init__(
        self,
        name: str,
        ports: Sequence[str],
        builder: Callable[[Circuit], None],
    ) -> None:
        self.name = name
        self.ports = tuple(ports)
        self.builder = builder

    def build_flat(self) -> Circuit:
        """Build a standalone circuit using the raw port node names."""
        circuit = Circuit(self.name)
        self.builder(circuit)
        return circuit

    def instantiate_into(
        self,
        parent: Circuit,
        instance_name: str,
        port_map: Dict[str, str],
    ) -> List[Device]:
        """Add this subcircuit's devices to ``parent`` with renamed nodes."""
        missing = set(self.ports) - set(port_map)
        if missing:
            raise ValueError(
                f"missing port mappings for {sorted(missing)} when instantiating "
                f"{self.name!r}"
            )
        template = self.build_flat()

        def map_node(node: str) -> str:
            if node in port_map:
                return port_map[node]
            if is_ground(node):
                return node
            return f"{instance_name}.{node}"

        added: List[Device] = []
        for device in template.devices:
            renamed = _rename_device(device, f"{instance_name}.{device.name}", map_node)
            parent.add(renamed)
            added.append(renamed)
        return added


def _rename_device(device: Device, new_name: str, map_node: Callable[[str], str]) -> Device:
    """Create a copy of ``device`` with a new name and remapped nodes.

    Devices are lightweight dataclass-like objects; we duplicate them via
    ``__class__.__new__`` plus ``__dict__`` copy and then patch name/nodes,
    which avoids having to re-run validation on already validated values.
    """
    clone = device.__class__.__new__(device.__class__)
    clone.__dict__.update(device.__dict__)
    clone.name = new_name
    clone.nodes = tuple(map_node(node) for node in device.nodes)
    return clone


def merge_circuits(name: str, circuits: Iterable[Circuit]) -> Circuit:
    """Merge several circuits that share node names into one flat circuit."""
    merged = Circuit(name)
    for circuit in circuits:
        for device in circuit.devices:
            merged.add(device)
    return merged
