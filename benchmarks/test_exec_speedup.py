"""Executor scaling benchmark: parallel sweeps vs the serial loop.

Measures the wall-clock win of fanning a Fig. 8-shaped sweep (a batch of
independent pipeline evaluations) out over a process pool, and asserts that
parallel results are *bit-identical* to serial ones.

Two workloads are used:

* A wait-bound stand-in pipeline with a fixed per-task cost, to measure the
  executor's own scaling without needing spare cores (process pools overlap
  such tasks even on a single-CPU runner).  This is where the ≥2x speedup
  with ``workers=4`` is asserted.
* The real classification pipeline at a tiny scale, to prove serial/parallel
  result parity on genuine training runs.

On a multi-core machine the same ``workers=4`` configuration applies to the
real compute-bound sweeps (e.g. ``AttackCampaign(pipeline, workers=4)`` for
the Fig. 8 grids); the executor's measured speedup is reported by
``format_execution_report``.
"""

import dataclasses
import multiprocessing
import time

import pytest

from repro.attacks import Attack2ExcitatoryThreshold, AttackCampaign
from repro.core.reporting import format_execution_report
from repro.core.results import ExperimentResult
from repro.exec import SweepExecutor

#: Per-task cost of the stand-in pipeline and the sweep size.  8 tasks at
#: 0.4 s give a 3.2 s serial floor; four workers land near 0.8 s plus pool
#: start-up, comfortably past the asserted 2x.
TASK_SECONDS = 0.4
GRID_THRESHOLD_CHANGES = (-0.2, -0.1, 0.1, 0.2)
GRID_FRACTIONS = (0.5, 1.0)


@dataclasses.dataclass(frozen=True)
class WaitBoundConfig:
    """Minimal picklable config for the stand-in pipeline.

    A dataclass so the executor's cache scope is derived from its *content*
    (stable across processes) — the elastic benchmark merges caches written
    by independently-launched workers.
    """

    scale_name: str = "wait-bound"


class WaitBoundPipeline:
    """Pipeline-protocol stand-in whose runs cost a fixed wall-clock time.

    Results are a pure function of the attack label, so serial and parallel
    execution must agree exactly — mirroring the real pipeline's contract.
    """

    def __init__(self, config=None) -> None:
        self.config = config or WaitBoundConfig()

    def _result(self, label: str) -> ExperimentResult:
        time.sleep(TASK_SECONDS)
        # Deterministic pseudo-accuracy derived from the label alone.
        accuracy = (sum(label.encode()) % 97) / 97.0
        return ExperimentResult(attack_label=label, accuracy=accuracy)

    def run(self, attack) -> ExperimentResult:
        return self._result(attack.label())

    def run_baseline(self) -> ExperimentResult:
        return self._result("baseline")


def build_wait_bound_pipeline() -> WaitBoundPipeline:
    return WaitBoundPipeline()


def _grid_attacks():
    return [
        Attack2ExcitatoryThreshold(threshold_change=change, fraction=fraction)
        for change in GRID_THRESHOLD_CHANGES
        for fraction in GRID_FRACTIONS
    ]


def test_parallel_sweep_speedup_over_serial(benchmark):
    attacks = _grid_attacks()

    serial = SweepExecutor(WaitBoundPipeline(), workers=0)
    start = time.perf_counter()
    serial_results = serial.map(attacks)
    serial_seconds = time.perf_counter() - start

    parallel = SweepExecutor(
        None, workers=4, pipeline_factory=build_wait_bound_pipeline
    )

    def run_parallel():
        return parallel.map(attacks)

    start = time.perf_counter()
    parallel_results = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds
    print(
        f"\nserial {serial_seconds:.2f} s, parallel(4) {parallel_seconds:.2f} s, "
        f"speedup {speedup:.2f}x over {len(attacks)} tasks"
    )
    print(format_execution_report(parallel.stats))

    for left, right in zip(serial_results, parallel_results):
        assert left.attack_label == right.attack_label
        assert left.accuracy == right.accuracy
    assert speedup >= 2.0, f"expected >=2x with workers=4, measured {speedup:.2f}x"


def test_resilient_sweep_under_chaos_matches_clean_run(benchmark):
    """A supervised sweep with injected worker faults still lands the same
    results as a fault-free serial run, at a bounded wall-clock overhead."""
    from repro.exec import Fault, FaultPlan, ResiliencePolicy, ResilientExecutor, RetryPolicy

    attacks = _grid_attacks()
    clean = SweepExecutor(WaitBoundPipeline(), workers=0)
    clean_results = clean.map(attacks)

    # Every task fails its first attempt; the supervisor's retry heals it.
    plan = FaultPlan(name="bench-chaos", faults=(Fault(action="raise"),))
    policy = ResiliencePolicy(
        retry=RetryPolicy(backoff_base=0.01, backoff_max=0.05), chaos=plan
    )
    chaotic = ResilientExecutor(
        None,
        workers=4,
        pipeline_factory=build_wait_bound_pipeline,
        policy=policy,
    )

    def run_chaotic():
        return chaotic.map(attacks)

    chaotic_results = benchmark.pedantic(run_chaotic, rounds=1, iterations=1)
    chaotic.close()
    print(format_execution_report(chaotic.stats))

    for left, right in zip(clean_results, chaotic_results):
        assert left.attack_label == right.attack_label
        assert left.accuracy == right.accuracy
    assert chaotic.stats.retries == len(attacks)


def _run_elastic_worker(workdir: str, worker_id: str) -> None:
    """One cooperating elastic process of the scaling benchmark.

    Module-level so it is importable by child processes; each worker opens
    its own persistent cache, joins the shared lease board and drains
    whatever chunks it can claim or steal.
    """
    from repro.exec import ElasticPolicy, ElasticScheduler, build_chunks
    from repro.store import open_worker_cache

    attacks = _grid_attacks()
    cache = open_worker_cache(workdir, worker_id)
    executor = SweepExecutor(
        None, workers=0, pipeline_factory=build_wait_bound_pipeline, cache=cache
    )
    scheduler = ElasticScheduler(
        workdir,
        "bench",
        policy=ElasticPolicy(lease_ttl=30.0, chunk_size=1, poll_interval=0.02),
        owner=worker_id,
        stats=executor.stats,
    )
    chunks = build_chunks(len(attacks), 1)
    scheduler.drain(
        chunks,
        lambda chunk: executor.map([attacks[i] for i in chunk.positions]),
    )


def _elastic_drain_seconds(workdir, n_workers: int) -> float:
    """Wall-clock of ``n_workers`` cooperating processes draining the grid."""
    context = multiprocessing.get_context("fork")
    start = time.perf_counter()
    processes = [
        context.Process(
            target=_run_elastic_worker, args=(str(workdir), f"bench-w{i}")
        )
        for i in range(n_workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0
    return time.perf_counter() - start


def test_elastic_scaling_one_to_four_processes(benchmark, tmp_path):
    """Work-stealing over the shard-cache substrate scales like the pool.

    One process drains the wait-bound grid serially; four cooperating
    processes split it dynamically through lease files.  The union of the
    per-worker caches must resolve every variant to the same bits the
    serial executor computes.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    from repro.exec import build_chunks
    from repro.store import open_worker_cache

    attacks = _grid_attacks()
    single_dir, fleet_dir = tmp_path / "single", tmp_path / "fleet"
    single_seconds = _elastic_drain_seconds(single_dir, 1)

    fleet_seconds = benchmark.pedantic(
        _elastic_drain_seconds, args=(fleet_dir, 4), rounds=1, iterations=1
    )

    speedup = single_seconds / fleet_seconds
    print(
        f"\nelastic 1 proc {single_seconds:.2f} s, 4 procs "
        f"{fleet_seconds:.2f} s, speedup {speedup:.2f}x "
        f"over {len(attacks)} tasks"
    )
    benchmark.extra_info["elastic_speedup"] = round(speedup, 3)
    benchmark.extra_info["single_process_seconds"] = round(single_seconds, 3)
    benchmark.extra_info["four_process_seconds"] = round(fleet_seconds, 3)
    benchmark.extra_info["tasks"] = len(attacks)
    benchmark.extra_info["chunks"] = len(build_chunks(len(attacks), 1))

    # Result parity: the union of the fleet's caches matches a serial run.
    serial = SweepExecutor(WaitBoundPipeline(), workers=0)
    serial_results = serial.map(attacks)
    union = open_worker_cache(fleet_dir, "checker")
    merged = SweepExecutor(
        None, workers=0, pipeline_factory=build_wait_bound_pipeline, cache=union
    ).peek_results(attacks)
    assert all(result is not None for result in merged)
    for left, right in zip(serial_results, merged):
        assert left.attack_label == right.attack_label
        assert left.accuracy == right.accuracy
    assert speedup >= 2.0, f"expected >=2x with 4 processes, measured {speedup:.2f}x"


def test_parallel_campaign_matches_serial_bit_for_bit(tiny_pipeline_config):
    """Fig. 8a-scope sweep: campaign results identical for workers=0 and 4."""
    from repro.core import ClassificationPipeline

    changes, fractions = (-0.2, 0.2), (0.0, 1.0)
    serial_campaign = AttackCampaign(ClassificationPipeline(tiny_pipeline_config))
    serial_grid = serial_campaign.sweep_layer_threshold(
        "excitatory", changes, fractions
    )
    parallel_campaign = AttackCampaign(
        ClassificationPipeline(tiny_pipeline_config), workers=4
    )
    parallel_grid = parallel_campaign.sweep_layer_threshold(
        "excitatory", changes, fractions
    )
    assert (serial_grid.accuracies == parallel_grid.accuracies).all()
    assert serial_grid.baseline_accuracy == parallel_grid.baseline_accuracy
