"""Simple image transforms used before spike encoding."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def intensity_scale(image: np.ndarray, factor: float) -> np.ndarray:
    """Scale pixel intensities by ``factor`` and clip to [0, 255].

    Diehl & Cook increase the input intensity when an example elicits too few
    excitatory spikes; the experiment pipeline uses this transform for that
    retry mechanism.
    """
    check_positive(factor, "factor")
    return np.clip(np.asarray(image, dtype=float) * factor, 0.0, 255.0)


def normalize_unit(image: np.ndarray) -> np.ndarray:
    """Normalise an image to [0, 1] by its own maximum (zero images pass through)."""
    image = np.asarray(image, dtype=float)
    maximum = image.max()
    if maximum <= 0:
        return np.zeros_like(image)
    return image / maximum


def threshold_binarize(image: np.ndarray, threshold: float = 127.5) -> np.ndarray:
    """Binarise an image at ``threshold`` (useful for quick dataset sanity checks)."""
    return (np.asarray(image, dtype=float) >= threshold).astype(float) * 255.0
