#!/usr/bin/env python
"""Check that markdown links in the project docs resolve.

Scans ``README.md`` and everything under ``docs/`` for markdown links and
images, and verifies every *relative* target exists on disk (anchors are
stripped; external ``http(s)``/``mailto`` targets are skipped so the check
stays deterministic and offline).  Exit code 1 lists every broken link —
the ``docs`` CI job runs this after the API build, so a renamed file or a
stale generated page fails the PR instead of shipping a dead link.

Usage::

    python tools/check_links.py [FILE_OR_DIR ...]   # default: README.md docs/
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown links/images: [text](target) / ![alt](target).
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Target schemes that are not files on disk.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: Iterable[str]) -> List[Path]:
    """The markdown files to scan (defaults: README.md + docs/**/*.md)."""
    paths = [Path(argument) for argument in arguments] or [
        Path("README.md"),
        Path("docs"),
    ]
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def broken_links(markdown_path: Path) -> List[Tuple[str, str]]:
    """Every (target, reason) of ``markdown_path`` that does not resolve."""
    failures: List[Tuple[str, str]] = []
    text = markdown_path.read_text(encoding="utf-8")
    # Fenced code blocks routinely show link-like syntax in examples.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        if target.startswith("#"):  # in-page anchor; headings are not checked
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (markdown_path.parent / file_part).resolve()
        if not resolved.exists():
            failures.append((target, f"missing file {resolved}"))
    return failures


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    total = 0
    failed = 0
    for markdown_path in iter_markdown_files(arguments):
        total += 1
        for target, reason in broken_links(markdown_path):
            failed += 1
            print(f"{markdown_path}: broken link {target!r} ({reason})", file=sys.stderr)
    if failed:
        print(f"{failed} broken link(s) across {total} file(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve across {total} markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
