"""SNN-engine hot-path benchmark: scalar vs lockstep-batched execution.

Two workloads, mirroring ``test_engine_hotpath.py`` one tier up:

* **stepping throughput** — V corrupted variants of one Diehl&Cook network
  advanced through identical Poisson rasters, per-variant on the scalar
  :class:`~repro.snn.network.Network` vs one lockstep pass on
  :class:`~repro.snn.batched.BatchedNetwork`.  ``extra_info`` records
  variant-steps/second for both engines.
* **campaign sweep wall-clock** — a Fig. 8-shaped layer-threshold sweep
  (threshold change × fraction grid, the benchmark-scale ``fig8`` grid) run
  once per engine on dedicated pipelines.  This is the number the PR-level
  claim is stated over: the batched sweep must beat the per-run scalar
  sweep by :data:`MIN_SWEEP_SPEEDUP` while producing bit-identical
  accuracy grids.

Speedup floors are asserted below typical measurements (~3x stepping with
STDP on, ~4x on the benchmark-scale sweep) to stay robust on noisy CI
runners; the measured values land in ``extra_info`` so the nightly
``BENCH_<date>.json`` snapshots carry the SNN engine's perf trajectory
alongside the circuit engine's.
"""

import time

import numpy as np

from repro.attacks.campaign import AttackCampaign
from repro.core import ClassificationPipeline
from repro.snn import BatchedNetwork, DiehlAndCook2015, DiehlAndCookParameters

#: Fig. 8-shaped grid at benchmark scale (5 unique train-and-evaluate runs).
THRESHOLD_CHANGES = (-0.2, 0.2)
FRACTIONS = (0.0, 0.5, 1.0)

#: Variants advanced by the stepping benchmark.
N_VARIANTS = 8

#: Presentation length and count of the stepping benchmark.
STEP_TIME = 80
STEP_PRESENTATIONS = 4

#: Conservative speedup floors (measured ~3x stepping, ~3.8-4x sweep on
#: the reference container; the sweep floor is the PR-level claim).
MIN_STEP_SPEEDUP = 1.8
MIN_SWEEP_SPEEDUP = 3.0


def _variant_networks(n_variants: int = N_VARIANTS):
    """Attack-grid-shaped corruptions of one small Diehl&Cook topology."""
    networks = []
    for index in range(n_variants):
        network = DiehlAndCook2015(
            DiehlAndCookParameters(n_inputs=144, n_neurons=48, norm=60.0), rng=5
        )
        scale = 0.8 + 0.1 * (index % 5)
        network.excitatory_layer.set_threshold_scale(scale)
        network.inhibitory_layer.set_input_gain(1.2 - 0.05 * index)
        networks.append(network)
    return networks


def _rasters():
    rng = np.random.default_rng(17)
    return [rng.random((STEP_TIME, 144)) < 0.2 for _ in range(STEP_PRESENTATIONS)]


def test_lockstep_stepping_beats_scalar_loop(benchmark):
    """V variants in lockstep vs V scalar passes over identical rasters."""
    rasters = _rasters()

    def scalar_pass():
        for network in _variant_networks():
            for raster in rasters:
                network.present(raster, learning=True)

    def batched_pass():
        batched = BatchedNetwork.from_networks(_variant_networks())
        for raster in rasters:
            batched.present({"input": raster}, learning=True)

    start = time.perf_counter()
    scalar_pass()
    scalar_seconds = time.perf_counter() - start

    benchmark.pedantic(batched_pass, rounds=3, iterations=1)
    batched_seconds = benchmark.stats.stats.mean

    variant_steps = N_VARIANTS * STEP_PRESENTATIONS * STEP_TIME
    speedup = scalar_seconds / batched_seconds
    benchmark.extra_info["scalar_variant_steps_per_sec"] = variant_steps / scalar_seconds
    benchmark.extra_info["batched_variant_steps_per_sec"] = variant_steps / batched_seconds
    benchmark.extra_info["stepping_speedup"] = speedup
    assert speedup >= MIN_STEP_SPEEDUP, (
        f"lockstep stepping speedup {speedup:.2f}x below the "
        f"{MIN_STEP_SPEEDUP}x floor"
    )


def test_fig8_shaped_sweep_speedup(benchmark, experiment_config):
    """The PR claim: >=3x on a Fig. 8-shaped layer-threshold sweep.

    Dedicated pipelines (not the shared session fixture) so both engines
    train from cold caches; the batched sweep must also reproduce the
    scalar grid bit for bit — speed never buys away determinism.
    """
    scalar_campaign = AttackCampaign(
        ClassificationPipeline(experiment_config, engine="scalar"), batch_runs=False
    )
    start = time.perf_counter()
    scalar_grid = scalar_campaign.sweep_layer_threshold(
        "excitatory", THRESHOLD_CHANGES, FRACTIONS
    )
    scalar_seconds = time.perf_counter() - start

    def batched_sweep():
        campaign = AttackCampaign(ClassificationPipeline(experiment_config))
        return campaign.sweep_layer_threshold(
            "excitatory", THRESHOLD_CHANGES, FRACTIONS
        )

    batched_grid = benchmark.pedantic(batched_sweep, rounds=1, iterations=1)
    batched_seconds = benchmark.stats.stats.mean

    assert np.array_equal(batched_grid.accuracies, scalar_grid.accuracies), (
        "batched sweep diverged from the scalar reference grid"
    )
    assert batched_grid.baseline_accuracy == scalar_grid.baseline_accuracy

    speedup = scalar_seconds / batched_seconds
    benchmark.extra_info["scalar_sweep_seconds"] = scalar_seconds
    benchmark.extra_info["batched_sweep_seconds"] = batched_seconds
    benchmark.extra_info["sweep_speedup"] = speedup
    benchmark.extra_info["grid_points"] = len(THRESHOLD_CHANGES) * len(FRACTIONS)
    assert speedup >= MIN_SWEEP_SPEEDUP, (
        f"Fig. 8-shaped sweep speedup {speedup:.2f}x below the "
        f"{MIN_SWEEP_SPEEDUP}x floor"
    )
