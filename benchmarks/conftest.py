"""Shared fixtures for the benchmark harness.

Every attack benchmark needs a trained baseline; the session-scoped pipeline
below trains it once and shares it across benchmark files.  The experiment
scale defaults to ``benchmark`` (300 training images, ~76 % baseline) and can
be switched to the paper's full scale with ``REPRO_SCALE=paper``.
"""

from __future__ import annotations

import pytest

from repro.core import ClassificationPipeline, ExperimentConfig
from repro.figures import FigureContext


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Scale selected through the REPRO_SCALE environment variable."""
    return ExperimentConfig.from_environment(default="benchmark")


@pytest.fixture(scope="session")
def pipeline(experiment_config) -> ClassificationPipeline:
    """The shared classification pipeline (dataset generated once)."""
    return ClassificationPipeline(experiment_config)


@pytest.fixture(scope="session")
def figure_context(pipeline) -> FigureContext:
    """One figure-registry context for the whole benchmark session.

    Sharing a single context shares the executor's content-keyed result
    cache, so attack configurations repeated across figure files (the
    baseline, ``Attack4(-0.2)``, ...) are trained exactly once per session.
    """
    return FigureContext(pipeline=pipeline)


@pytest.fixture(scope="session")
def baseline_accuracy(pipeline) -> float:
    """Attack-free accuracy (trains one network; reused by every benchmark)."""
    return pipeline.run_baseline().accuracy


@pytest.fixture(scope="session")
def tiny_pipeline_config() -> ExperimentConfig:
    """A sub-smoke scale for executor-parity checks (seconds per run)."""
    return ExperimentConfig.tiny()
