"""DC operating-point analysis and DC sweeps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analog.compiled import make_system
from repro.analog.devices import CurrentSource, VoltageSource
from repro.analog.mna import (
    MNASystem,
    SolverOptions,
    StampState,
    newton_solve,
    seed_solution_vector,
)
from repro.analog.netlist import Circuit


@dataclass
class OperatingPoint:
    """The converged DC solution of a circuit."""

    circuit_name: str
    node_voltages: Dict[str, float]
    branch_currents: Dict[str, float]

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` (0.0 for ground)."""
        if node in self.node_voltages:
            return self.node_voltages[node]
        return 0.0

    def current(self, source_name: str) -> float:
        """Branch current through a voltage source or inductor."""
        return self.branch_currents[source_name]

    def __getitem__(self, node: str) -> float:
        return self.voltage(node)


def dc_operating_point(
    circuit: Circuit,
    *,
    initial_guess: Optional[Dict[str, float]] = None,
    options: Optional[SolverOptions] = None,
    engine: str = "auto",
) -> OperatingPoint:
    """Compute the DC operating point of ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit to solve.
    initial_guess:
        Optional starting node voltages (helps convergence of bistable
        circuits such as latches and the Axon-Hillock feedback loop).
    options:
        Solver options.
    engine:
        Solver backend (see :func:`repro.analog.compiled.make_system`).
    """
    system = make_system(circuit, engine)
    guess = seed_solution_vector(system, initial_guess)
    state = StampState(system=system, analysis="dc", time=0.0)
    solution = newton_solve(system, state, guess, options)
    return _solution_to_op(system, solution)


def _solution_to_op(system: MNASystem, solution: np.ndarray) -> OperatingPoint:
    branch_currents = {}
    for device in system.circuit.devices:
        if device.n_branches:
            branch_currents[device.name] = system.branch_current_of(solution, device)
    return OperatingPoint(
        circuit_name=system.circuit.name,
        node_voltages=system.solution_as_dict(solution),
        branch_currents=branch_currents,
    )


@dataclass
class DCSweepResult:
    """Result of sweeping one independent source through a list of values."""

    source_name: str
    values: np.ndarray
    operating_points: List[OperatingPoint]

    def voltage(self, node: str) -> np.ndarray:
        """Array of node voltages across the sweep."""
        return np.array([op.voltage(node) for op in self.operating_points])

    def current(self, source_name: str) -> np.ndarray:
        """Array of branch currents across the sweep."""
        return np.array([op.current(source_name) for op in self.operating_points])

    def __len__(self) -> int:
        return len(self.operating_points)


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: Sequence[float],
    *,
    options: Optional[SolverOptions] = None,
    engine: str = "auto",
) -> DCSweepResult:
    """Sweep an independent source and record the operating point at each value.

    The previous solution is used as the initial guess for the next point
    (continuation), which keeps Newton-Raphson on the same branch of
    multistable circuits and dramatically speeds up convergence.
    """
    device = circuit[source_name]
    if not isinstance(device, (VoltageSource, CurrentSource)):
        raise TypeError(f"{source_name!r} is not an independent source")
    original_value = device.value
    system = make_system(circuit, engine)
    state = StampState(system=system, analysis="dc", time=0.0)
    guess = np.zeros(system.size)
    ops: List[OperatingPoint] = []
    try:
        for value in values:
            device.value = float(value)
            solution = newton_solve(system, state, guess, options)
            guess = solution
            ops.append(_solution_to_op(system, solution))
    finally:
        device.value = original_value
    return DCSweepResult(
        source_name=source_name,
        values=np.asarray(values, dtype=float),
        operating_points=ops,
    )
