"""Evaluate the paper's countermeasures (Sec. V).

Shows, for each defense, how much of the attack-induced parameter corruption
survives, what it costs, and whether the dummy-neuron detector flags the
supply fault — all through the figure registry, so the same tables are
served by ``python -m repro run residuals fig10c overheads``.

Figures reproduced
    The defense columns of Figs. 9b/9c/10a (residual corruption), Fig. 10b/c
    (dummy-neuron detector) and the Sec. V area/power overhead table.
Expected runtime
    A few seconds on a laptop (behavioural models and small circuit solves
    only; no SNN training).

Usage::

    python examples/defense_evaluation.py
"""

from repro.core import ExperimentConfig
from repro.figures import FigureContext, get_figure

FIGURES = ("residuals", "fig10c", "overheads")


def main() -> None:
    # The defense circuit tier is scale-independent; the config labels the run.
    config = ExperimentConfig.from_environment(default="benchmark")
    with FigureContext(config) as context:
        for name in FIGURES:
            print(get_figure(name).run(context).render())
            print()
    print("Persist these with: python -m repro run " + " ".join(FIGURES))


if __name__ == "__main__":
    main()
