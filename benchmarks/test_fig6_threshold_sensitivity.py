"""Fig. 6a-6c — membrane-threshold and time-to-spike sensitivity to VDD.

Fig. 6a: membrane threshold vs VDD for both neurons (paper: AH −17.9 %/+16.8 %,
I&F −18.0 %/+17.1 % for ±20 % VDD).

Fig. 6b/6c: the resulting time-to-spike change at fixed input amplitude.
"""

import numpy as np

from repro.circuits import threshold_vs_vdd
from repro.neurons import AxonHillockModel, IFAmplifierModel
from repro.utils.tables import format_table

VDD_VALUES = np.array([0.8, 0.9, 1.0, 1.1, 1.2])


def run_fig6a():
    circuit_thresholds = threshold_vs_vdd(VDD_VALUES)
    axon_hillock = AxonHillockModel()
    if_neuron = IFAmplifierModel()
    rows = []
    for vdd, circuit_threshold in zip(VDD_VALUES, circuit_thresholds):
        rows.append(
            (
                vdd,
                circuit_threshold,
                axon_hillock.membrane_threshold(vdd),
                if_neuron.membrane_threshold(vdd),
            )
        )
    return rows


def run_fig6bc():
    axon_hillock = AxonHillockModel()
    if_neuron = IFAmplifierModel()
    base_ah = axon_hillock.time_to_first_spike(200e-9, vdd=1.0)
    base_if = if_neuron.time_to_first_spike(200e-9, vdd=1.0)
    rows = []
    for vdd in VDD_VALUES:
        ah = (axon_hillock.time_to_first_spike(200e-9, vdd=vdd) - base_ah) / base_ah
        if_ = (if_neuron.time_to_first_spike(200e-9, vdd=vdd) - base_if) / base_if
        rows.append((vdd, ah * 100, if_ * 100))
    return rows


def test_fig6a_threshold_vs_vdd(benchmark):
    rows = benchmark.pedantic(run_fig6a, rounds=1, iterations=1)
    print(
        format_table(
            ["VDD (V)", "inverter threshold (V)", "AH model threshold (V)", "I&F threshold (V)"],
            rows,
            title="Fig. 6a — membrane threshold vs VDD",
        )
    )
    circuit = np.array([row[1] for row in rows])
    changes = (circuit - circuit[2]) / circuit[2]
    assert -0.22 < changes[0] < -0.10
    assert 0.10 < changes[-1] < 0.22
    if_thresholds = np.array([row[3] for row in rows])
    assert np.allclose(if_thresholds, 0.5 * VDD_VALUES)


def test_fig6bc_time_to_spike_vs_vdd(benchmark):
    rows = benchmark.pedantic(run_fig6bc, rounds=1, iterations=1)
    print(
        format_table(
            ["VDD (V)", "AH time-to-spike change (%)", "I&F time-to-spike change (%)"],
            rows,
            title="Fig. 6b/6c — time-to-spike vs VDD",
        )
    )
    by_vdd = {row[0]: row for row in rows}
    # Lower supply -> lower threshold -> faster spiking for both neurons.
    assert by_vdd[0.8][1] < -8 and by_vdd[1.2][1] > 8
    assert by_vdd[0.8][2] < -12 and by_vdd[1.2][2] > 15
