"""Microbatching front-end: coalesce single-example requests into lockstep passes.

Serving traffic arrives one example at a time, but the batched SNN engine
is fastest advancing ``example_chunk`` examples in lockstep
(:mod:`repro.snn.batched`, ~linear in time steps, nearly flat in lane
count).  :class:`Microbatcher` sits between the two: requests queue until
either the batch is full (**full** flush) or the oldest pending request
has waited ``linger`` seconds (**linger** flush, bounding worst-case
latency); any remainder is flushed on drain/close (**drain** flush).

Correctness rests on the serving tier's invariances, not on timing:
per-lane independence of the batched engine makes a batch's scores
bit-identical to scoring each example alone, and keyed per-request
encoding (:meth:`repro.snn.serving.ScoringEngine.encode_request`) makes
each payload independent of arrival order.  Any partition of a request
stream into microbatches therefore demuxes to exactly the predictions of
one monolithic pass — the property suite in
``tests/test_property_based.py`` drives random partitions and orderings
through this contract.

Counters (batches formed, request totals, flush causes) feed the shared
:class:`~repro.exec.executor.ExecutionStats` instrumentation and surface
through :func:`repro.core.reporting.format_execution_report`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.executor import ExecutionStats
from repro.utils.validation import check_positive

#: Default maximum time (seconds) the oldest pending request may linger
#: before a partial batch is flushed anyway.
DEFAULT_LINGER = 0.005

#: Flush causes, in the order the counters report them.
FLUSH_CAUSES = ("full", "linger", "drain")


class Microbatcher:
    """Coalesces single-example scoring requests into lockstep batches.

    Parameters
    ----------
    score_batch:
        Callable mapping a list of request payloads to a sequence of
        results of the same length and order (e.g. encoded rasters in,
        predicted labels out).  Invoked once per formed microbatch.
    example_chunk:
        Maximum requests per lockstep pass; a full queue flushes
        immediately.
    linger:
        Maximum seconds the *oldest* pending request may wait before a
        partial batch is flushed (checked by :meth:`poll`).
    stats:
        Optional shared :class:`~repro.exec.executor.ExecutionStats` to
        accumulate the serving counters into (a private one by default).
    time_source:
        Monotonic clock used for the linger deadline — injectable so the
        flush rules are deterministic under test.

    The batcher is a context manager: leaving the ``with`` block drains
    any pending requests, so no submitted request is ever lost.
    """

    def __init__(
        self,
        score_batch: Callable[[List[Any]], Sequence[Any]],
        *,
        example_chunk: int = 64,
        linger: float = DEFAULT_LINGER,
        stats: Optional[ExecutionStats] = None,
        time_source: Callable[[], float] = time.monotonic,
    ) -> None:
        self._score_batch = score_batch
        self.example_chunk = int(check_positive(example_chunk, "example_chunk"))
        self.linger = float(check_positive(linger, "linger"))
        self.stats = stats if stats is not None else ExecutionStats()
        self._now = time_source
        #: Pending requests in arrival order: ``(request_id, payload)``.
        self._pending: List[Tuple[Any, Any]] = []
        self._oldest_enqueued_at: Optional[float] = None
        self._results: Dict[Any, Any] = {}
        self._seen: set = set()

    # --------------------------------------------------------------- ingress
    def submit(self, request_id: Any, payload: Any) -> None:
        """Enqueue one request; flushes immediately when the batch fills.

        ``request_id`` must be unique over the batcher's lifetime —
        duplicate ids would make the demux ambiguous, so they raise
        :class:`ValueError` instead of silently overwriting.
        """
        if request_id in self._seen:
            raise ValueError(f"duplicate request id {request_id!r}")
        self._seen.add(request_id)
        if not self._pending:
            self._oldest_enqueued_at = self._now()
        self._pending.append((request_id, payload))
        if len(self._pending) >= self.example_chunk:
            self._flush("full")

    def poll(self) -> int:
        """Flush a partial batch whose oldest request exceeded ``linger``.

        Call periodically (or whenever the event loop is idle).  Returns
        the number of requests flushed (0 when the deadline has not
        passed or nothing is pending).
        """
        if (
            self._pending
            and self._now() - self._oldest_enqueued_at >= self.linger
        ):
            return self._flush("linger")
        return 0

    def drain(self) -> int:
        """Flush whatever is pending regardless of deadlines."""
        if not self._pending:
            return 0
        return self._flush("drain")

    # ---------------------------------------------------------------- egress
    def result(self, request_id: Any) -> Any:
        """The scored result for one request (out-of-order safe).

        Results may be claimed in any order relative to submission.  If
        the request is still pending, its batch is drained first, so a
        caller can always exchange a submitted id for a result.  Unknown
        ids raise :class:`KeyError`.
        """
        if request_id not in self._results:
            if any(rid == request_id for rid, _payload in self._pending):
                self._flush("drain")
            elif request_id not in self._seen:
                raise KeyError(f"unknown request id {request_id!r}")
        return self._results.pop(request_id)

    @property
    def pending(self) -> int:
        """Number of submitted requests not yet scored."""
        return len(self._pending)

    # ----------------------------------------------------------------- flush
    def _flush(self, cause: str) -> int:
        batch = self._pending
        self._pending = []
        self._oldest_enqueued_at = None
        payloads = [payload for _rid, payload in batch]
        outputs = self._score_batch(payloads)
        if len(outputs) != len(batch):
            raise RuntimeError(
                f"score_batch returned {len(outputs)} results for "
                f"{len(batch)} requests"
            )
        for (request_id, _payload), output in zip(batch, outputs):
            self._results[request_id] = output
        self.stats.microbatches += 1
        self.stats.microbatch_requests += len(batch)
        if cause == "full":
            self.stats.microbatch_full_flushes += 1
        elif cause == "linger":
            self.stats.microbatch_linger_flushes += 1
        else:
            self.stats.microbatch_drain_flushes += 1
        return len(batch)

    # -------------------------------------------------------- context manager
    def __enter__(self) -> "Microbatcher":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Microbatcher(example_chunk={self.example_chunk}, "
            f"pending={len(self._pending)}, "
            f"batches={self.stats.microbatches})"
        )
