"""Robust current-driver defense (paper Fig. 9b, Sec. V-A).

The regulated driver keeps the input spike amplitude at ``V_ref / R1``
regardless of the supply, so the ``theta`` corruption of Attacks 1 and 5
essentially disappears.  The paper reports a 3 % power overhead and
negligible area overhead (the neuron capacitors dominate the area).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.neurons.driver import CurrentDriverModel, RobustDriverModel
from repro.utils.validation import check_positive


@dataclass
class RobustDriverDefense:
    """Replaces the unprotected current-mirror driver with the regulated one."""

    protected: RobustDriverModel = field(default_factory=RobustDriverModel)
    unprotected: CurrentDriverModel = field(default_factory=CurrentDriverModel)
    #: Power overhead of the op-amp and long-channel mirror (paper: 3 %).
    power_overhead: float = 0.03
    #: Area overhead (negligible: neuron capacitors dominate).
    area_overhead: float = 0.005

    def __post_init__(self) -> None:
        check_positive(self.power_overhead, "power_overhead")

    def theta_scale(self, vdd: float) -> float:
        """Per-spike drive scale at supply ``vdd`` with the defense active."""
        return self.protected.amplitude_scale(vdd)

    def undefended_theta_scale(self, vdd: float) -> float:
        """Per-spike drive scale without the defense (unprotected driver)."""
        return self.unprotected.amplitude_scale(vdd)

    def residual_theta_change(self, vdd: float) -> float:
        """Fractional drive change that survives the defense."""
        return self.theta_scale(vdd) - 1.0

    def suppression_factor(self, vdd: float) -> float:
        """How much smaller the drive corruption is with the defense.

        Values well above 1 mean the defense is effective (e.g. a 32 %
        corruption reduced to 0.2 % gives a factor of ~160).
        """
        undefended = abs(self.undefended_theta_scale(vdd) - 1.0)
        defended = abs(self.residual_theta_change(vdd))
        if defended == 0:
            return np.inf
        return undefended / defended

    def amplitude_vs_vdd(self, vdd_values) -> np.ndarray:
        """Defended output amplitude across a VDD sweep (flat, Fig. 9b)."""
        return self.protected.amplitude_vs_vdd(vdd_values)
