"""Tests for connections and plasticity rules."""

import numpy as np
import pytest

from repro.snn.learning import NoOp, PostPre, WeightDependentPostPre
from repro.snn.nodes import InputNodes, LIFNodes
from repro.snn.topology import (
    Connection,
    lateral_inhibition_weights,
    one_to_one_weights,
)


def make_layers(n_pre=4, n_post=3):
    return InputNodes(n_pre), LIFNodes(n_post)


class TestConnection:
    def test_default_weights_shape_and_bounds(self):
        pre, post = make_layers()
        connection = Connection(pre, post, rng=0)
        assert connection.w.shape == (4, 3)
        assert connection.w.min() >= 0.0 and connection.w.max() <= 0.3

    def test_weight_shape_validation(self):
        pre, post = make_layers()
        with pytest.raises(ValueError):
            Connection(pre, post, w=np.zeros((2, 2)))

    def test_wmin_wmax_validation_and_clamp(self):
        pre, post = make_layers()
        with pytest.raises(ValueError):
            Connection(pre, post, wmin=1.0, wmax=0.0)
        connection = Connection(pre, post, w=np.full((4, 3), 5.0), wmin=0.0, wmax=1.0)
        assert connection.w.max() == 1.0

    def test_compute_sums_active_rows(self):
        pre, post = make_layers()
        w = np.arange(12, dtype=float).reshape(4, 3)
        connection = Connection(pre, post, w=w)
        pre.set_spikes(np.array([1, 0, 1, 0], dtype=bool))
        assert np.allclose(connection.compute(), w[0] + w[2])

    def test_compute_zero_when_silent(self):
        pre, post = make_layers()
        connection = Connection(pre, post, rng=0)
        assert np.allclose(connection.compute(), 0.0)

    def test_normalize_per_target(self):
        pre, post = make_layers()
        connection = Connection(pre, post, w=np.ones((4, 3)), norm=2.0)
        connection.normalize()
        assert np.allclose(connection.w.sum(axis=0), 2.0)

    def test_normalize_noop_without_norm(self):
        pre, post = make_layers()
        connection = Connection(pre, post, w=np.ones((4, 3)))
        connection.normalize()
        assert np.allclose(connection.w, 1.0)

    def test_one_to_one_and_lateral_helpers(self):
        diag = one_to_one_weights(3, 22.5)
        assert np.allclose(np.diag(diag), 22.5)
        assert diag.sum() == pytest.approx(3 * 22.5)
        lateral = lateral_inhibition_weights(3, -10.0)
        assert np.allclose(np.diag(lateral), 0.0)
        assert lateral[0, 1] == -10.0


class TestLearningRules:
    def test_noop_leaves_weights(self):
        pre, post = make_layers()
        connection = Connection(pre, post, w=np.full((4, 3), 0.5), update_rule=NoOp())
        pre.set_spikes(np.ones(4, dtype=bool))
        post.spikes = np.ones(3, dtype=bool)
        connection.update(learning=True)
        assert np.allclose(connection.w, 0.5)

    def test_postpre_potentiation_on_post_spike(self):
        pre, post = make_layers()
        connection = Connection(
            pre, post, w=np.full((4, 3), 0.5), wmin=0, wmax=1,
            update_rule=PostPre(nu_pre=0.0, nu_post=0.1),
        )
        pre.traces[:] = 1.0
        post.spikes = np.array([True, False, False])
        connection.update(learning=True)
        assert np.allclose(connection.w[:, 0], 0.6)
        assert np.allclose(connection.w[:, 1:], 0.5)

    def test_postpre_depression_on_pre_spike(self):
        pre, post = make_layers()
        connection = Connection(
            pre, post, w=np.full((4, 3), 0.5), wmin=0, wmax=1,
            update_rule=PostPre(nu_pre=0.1, nu_post=0.0),
        )
        post.traces[:] = 1.0
        pre.set_spikes(np.array([1, 0, 0, 0], dtype=bool))
        connection.update(learning=True)
        assert np.allclose(connection.w[0], 0.4)
        assert np.allclose(connection.w[1:], 0.5)

    def test_learning_disabled_skips_update(self):
        pre, post = make_layers()
        connection = Connection(
            pre, post, w=np.full((4, 3), 0.5), update_rule=PostPre(0.1, 0.1)
        )
        pre.set_spikes(np.ones(4, dtype=bool))
        post.traces[:] = 1.0
        connection.update(learning=False)
        assert np.allclose(connection.w, 0.5)

    def test_weights_stay_clamped_after_update(self):
        pre, post = make_layers()
        connection = Connection(
            pre, post, w=np.full((4, 3), 0.99), wmin=0, wmax=1,
            update_rule=PostPre(nu_pre=0.0, nu_post=0.5),
        )
        pre.traces[:] = 1.0
        post.spikes = np.ones(3, dtype=bool)
        connection.update(learning=True)
        assert connection.w.max() <= 1.0

    def test_weight_dependent_rule_soft_bounds(self):
        pre, post = make_layers()
        connection = Connection(
            pre, post, w=np.full((4, 3), 0.99), wmin=0, wmax=1,
            update_rule=WeightDependentPostPre(nu_pre=0.0, nu_post=0.5),
        )
        pre.traces[:] = 1.0
        post.spikes = np.ones(3, dtype=bool)
        connection.update(learning=True)
        # Potentiation scaled by the tiny remaining headroom: the weights
        # approach but never reach the ceiling.
        assert connection.w.max() < 1.0
        assert connection.w.min() > 0.99

    def test_negative_learning_rates_rejected(self):
        with pytest.raises(ValueError):
            PostPre(nu_pre=-0.1)
