"""Sparse-tier specifics: crossbar circuits, routing and scipy-free fallback.

The three-way numerical parity contract lives in
``tests/test_analog_compiled.py``; this module covers what is unique to the
sparse tier — the crossbar layer netlist it exists for, the ``engine="auto"``
size-threshold routing, the batched lockstep sparse mode, and the graceful
degradation to the dense engine when SciPy is missing or a circuit contains
non-compiled device types.
"""

import warnings

import numpy as np
import pytest

from repro.analog import (
    Circuit,
    estimate_system_size,
    make_system,
    transient_analysis,
)
from repro.analog import sparse as sparse_module
from repro.analog.batch import BatchedCircuit
from repro.analog.compiled import SPARSE_SIZE_THRESHOLD, CompiledCircuit
from repro.analog.devices import Resistor
from repro.analog.sparse import HAVE_SPARSE, SparseCircuit, try_sparse_system
from repro.circuits import (
    CROSSBAR_SCALING_SIZES,
    CrossbarLayerDesign,
    build_crossbar_layer,
    crossbar_spike_counts,
    simulate_crossbar_layer,
)

needs_sparse = pytest.mark.skipif(
    not HAVE_SPARSE, reason="sparse tier needs scipy"
)

#: A crossbar small enough for the scalar reference engine to keep up.
SMALL_DESIGN = CrossbarLayerDesign(n_columns=24, n_rows=4)

#: A crossbar just over the auto-routing threshold (270 unknowns).
LARGE_DESIGN = CrossbarLayerDesign(n_columns=260, n_rows=4)


def _unsupported_circuit() -> Circuit:
    class CustomResistor(Resistor):
        """Exact-type lookup must reject subclasses with their own stamp."""

        def stamp(self, stamper, state):  # pragma: no cover - never solved
            super().stamp(stamper, state)

    circuit = Circuit("custom")
    circuit.add_voltage_source("V1", "in", "0", 1.0)
    circuit.add(CustomResistor("RX", "in", "out", "1k"))
    circuit.add_resistor("R2", "out", "0", "1k")
    return circuit


class TestCrossbarCircuit:
    def test_system_size_formula_matches_mna(self):
        for design in (SMALL_DESIGN, CrossbarLayerDesign(n_columns=7, n_rows=3)):
            system = make_system(build_crossbar_layer(design), "compiled")
            assert system.size == design.system_size
            assert estimate_system_size(build_crossbar_layer(design)) == (
                design.system_size
            )

    def test_weight_draw_is_seeded_and_bounded(self):
        a = SMALL_DESIGN.weight_resistances()
        b = SMALL_DESIGN.weight_resistances()
        np.testing.assert_array_equal(a, b)
        assert a.shape == (SMALL_DESIGN.n_columns, SMALL_DESIGN.n_rows)
        assert (a >= SMALL_DESIGN.weight_r_min).all()
        assert (a <= SMALL_DESIGN.weight_r_max).all()
        other = CrossbarLayerDesign(n_columns=24, n_rows=4, seed=1)
        assert not np.array_equal(other.weight_resistances(), a)

    def test_scaling_sizes_straddle_the_routing_threshold(self):
        assert CROSSBAR_SCALING_SIZES[0] < SPARSE_SIZE_THRESHOLD
        assert all(
            CrossbarLayerDesign(n_columns=n).system_size > SPARSE_SIZE_THRESHOLD
            for n in CROSSBAR_SCALING_SIZES[1:]
        )

    def test_design_validation(self):
        with pytest.raises(ValueError):
            CrossbarLayerDesign(n_columns=0)
        with pytest.raises(ValueError):
            CrossbarLayerDesign(threshold_fraction=1.5)

    @needs_sparse
    def test_crossbar_spike_metrics_identical_across_engines(self):
        columns = range(SMALL_DESIGN.n_columns)
        kwargs = dict(stop_time="0.6u", time_step="4n")
        results = {
            engine: simulate_crossbar_layer(SMALL_DESIGN, engine=engine, **kwargs)
            for engine in ("scalar", "compiled", "sparse")
        }
        counts = {
            engine: crossbar_spike_counts(result, SMALL_DESIGN, columns)
            for engine, result in results.items()
        }
        assert counts["scalar"].sum() >= SMALL_DESIGN.n_columns // 2
        np.testing.assert_array_equal(counts["compiled"], counts["scalar"])
        np.testing.assert_array_equal(counts["sparse"], counts["compiled"])
        for j in (0, SMALL_DESIGN.n_columns - 1):
            node = f"col{j}"
            np.testing.assert_allclose(
                results["sparse"].voltage(node),
                results["compiled"].voltage(node),
                atol=1e-10,
            )


@needs_sparse
class TestRouting:
    def test_explicit_sparse_forces_sparse_at_any_size(self):
        system = make_system(build_crossbar_layer(SMALL_DESIGN), "sparse")
        assert isinstance(system, SparseCircuit)

    def test_auto_routes_by_size_threshold(self):
        small = make_system(build_crossbar_layer(SMALL_DESIGN), "auto")
        assert isinstance(small, CompiledCircuit)
        assert not isinstance(small, SparseCircuit)
        large = make_system(build_crossbar_layer(LARGE_DESIGN), "auto")
        assert isinstance(large, SparseCircuit)

    def test_pattern_is_actually_sparse_at_scale(self):
        system = make_system(build_crossbar_layer(LARGE_DESIGN), "sparse")
        density = system.nnz / system.size**2
        assert density < 0.10
        # The dense workspace is released: peak memory is O(nnz).
        assert system._matrix is None

    def test_sparse_rejects_fallback_devices_directly(self):
        with pytest.raises(ValueError, match="compiled device types only"):
            SparseCircuit(_unsupported_circuit())

    def test_batched_sparse_mode_flags(self):
        sparse_batch = BatchedCircuit(
            [build_crossbar_layer(SMALL_DESIGN) for _ in range(2)],
            engine="sparse",
        )
        assert sparse_batch.sparse_mode
        auto_large = BatchedCircuit(
            [build_crossbar_layer(LARGE_DESIGN) for _ in range(2)]
        )
        assert auto_large.sparse_mode
        auto_small = BatchedCircuit(
            [build_crossbar_layer(SMALL_DESIGN) for _ in range(2)]
        )
        assert not auto_small.sparse_mode
        with pytest.raises(ValueError):
            BatchedCircuit(
                [build_crossbar_layer(SMALL_DESIGN) for _ in range(2)],
                engine="warp-drive",
            )


class TestFallback:
    """``engine="sparse"`` degrades to dense with one warning, never crashes."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self, monkeypatch):
        monkeypatch.setattr(sparse_module, "_WARNED", set())

    def test_missing_scipy_degrades_with_single_warning(self, monkeypatch):
        monkeypatch.setattr(sparse_module, "HAVE_SPARSE", False)
        circuit = build_crossbar_layer(SMALL_DESIGN)
        with pytest.warns(RuntimeWarning, match="degrades to the dense"):
            system = make_system(circuit, "sparse")
        assert isinstance(system, CompiledCircuit)
        assert not isinstance(system, SparseCircuit)
        # Second request: same degradation, no warning spam.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = make_system(build_crossbar_layer(SMALL_DESIGN), "sparse")
        assert isinstance(again, CompiledCircuit)

    def test_missing_scipy_auto_large_n_degrades_silently_to_dense(
        self, monkeypatch
    ):
        monkeypatch.setattr(sparse_module, "HAVE_SPARSE", False)
        with pytest.warns(RuntimeWarning, match="scipy.sparse is unavailable"):
            system = make_system(build_crossbar_layer(LARGE_DESIGN), "auto")
        assert isinstance(system, CompiledCircuit)
        assert not isinstance(system, SparseCircuit)

    def test_missing_scipy_transient_still_solves(self, monkeypatch):
        monkeypatch.setattr(sparse_module, "HAVE_SPARSE", False)
        with pytest.warns(RuntimeWarning):
            result = transient_analysis(
                build_crossbar_layer(SMALL_DESIGN),
                stop_time="20n",
                time_step="4n",
                use_initial_conditions=True,
                record_nodes=["col0"],
                engine="sparse",
            )
        assert len(result.voltage("col0")) == 6

    def test_unsupported_devices_warn_only_when_explicit(self):
        if not HAVE_SPARSE:
            pytest.skip("needs scipy to reach the device check")
        with pytest.warns(RuntimeWarning, match="outside"):
            assert try_sparse_system(_unsupported_circuit(), explicit=True) is None
        # The auto heuristic checks support before routing here: silent.
        monkey_warned = sparse_module._WARNED
        monkey_warned.clear()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert (
                try_sparse_system(_unsupported_circuit(), explicit=False) is None
            )

    def test_explicit_sparse_on_unsupported_circuit_degrades(self):
        if not HAVE_SPARSE:
            pytest.skip("covered by the no-scipy tests above")
        with pytest.warns(RuntimeWarning, match="device types outside"):
            system = make_system(_unsupported_circuit(), "sparse")
        assert isinstance(system, CompiledCircuit)
        assert not isinstance(system, SparseCircuit)
