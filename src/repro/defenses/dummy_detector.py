"""Dummy-neuron voltage-fault-injection detector (paper Fig. 10b/10c).

A dummy neuron embedded in each layer is driven by a fixed, input-independent
spike train (200 nA amplitude, 100 ns width, 200 ns period).  Under nominal
conditions its output spike count over a fixed sampling window is constant;
a localised VDD fault changes the dummy's threshold and drive and therefore
its spike count.  A deviation of at least 10 % from the calibration count
flags an attack.  The paper reports ~1 % area and power overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.neurons.axon_hillock import AxonHillockModel
from repro.neurons.driver import CurrentDriverModel
from repro.neurons.if_amplifier import IFAmplifierModel
from repro.utils.validation import check_fraction, check_in_choices, check_positive


@dataclass
class DetectionOutcome:
    """Detector reading at one supply voltage."""

    vdd: float
    spike_count: int
    reference_count: int
    deviation: float
    detected: bool

    def as_row(self) -> tuple:
        """(vdd, count, deviation, detected) row for reporting."""
        return (self.vdd, self.spike_count, round(self.deviation, 4), self.detected)


@dataclass
class DummyNeuronDetector:
    """Counts dummy-neuron output spikes over a sampling window.

    Parameters
    ----------
    neuron_type:
        ``"axon_hillock"`` or ``"if_amplifier"`` — both are evaluated in the
        paper's Fig. 10c.
    sampling_window:
        Observation window in seconds (paper: 100 ms... the counting period).
    detection_threshold:
        Fractional deviation of the spike count that flags an attack
        (paper: 10 %).
    input_amplitude, duty_cycle:
        The dummy's fixed drive (200 nA spikes, 100 ns high / 200 ns period
        gives a 0.5 duty cycle).
    """

    neuron_type: str = "axon_hillock"
    sampling_window: float = 10e-3
    detection_threshold: float = 0.10
    input_amplitude: float = 200e-9
    duty_cycle: float = 0.5
    driver: CurrentDriverModel = field(default_factory=CurrentDriverModel)
    nominal_vdd: float = 1.0

    def __post_init__(self) -> None:
        check_in_choices(self.neuron_type, "neuron_type", ("axon_hillock", "if_amplifier"))
        check_positive(self.sampling_window, "sampling_window")
        check_fraction(self.detection_threshold, "detection_threshold")
        check_positive(self.input_amplitude, "input_amplitude")
        check_fraction(self.duty_cycle, "duty_cycle")

    # ------------------------------------------------------------------ model
    def _neuron(self, vdd: float):
        """The dummy cell, biased for detection sensitivity.

        The dummy neuron takes no part in computation, so it is biased so
        that its firing period is dominated by the threshold-crossing time:
        the Axon-Hillock dummy uses a strong reset current (short output
        pulse) and the I&F dummy a short refractory period.  This makes the
        spike count track the VDD-induced threshold/drive corruption almost
        proportionally, which is what gives the ≥10 % count deviation the
        paper relies on.
        """
        if self.neuron_type == "axon_hillock":
            return AxonHillockModel(
                vdd=vdd, nominal_vdd=self.nominal_vdd, reset_current=5e-6
            )
        return IFAmplifierModel(
            vdd=vdd, nominal_vdd=self.nominal_vdd, refractory_period_seconds=20e-6
        )

    def spike_count(self, vdd: float) -> int:
        """Dummy-neuron output spikes in the sampling window at supply ``vdd``.

        The dummy's current driver shares the corrupted supply, so both the
        drive amplitude and the threshold move with VDD — which is what makes
        the count a sensitive detector.
        """
        check_positive(vdd, "vdd")
        amplitude = self.input_amplitude * self.driver.amplitude_scale(vdd)
        neuron = self._neuron(vdd)
        metrics = neuron.simulate(
            amplitude, duty_cycle=self.duty_cycle, duration=self.sampling_window, vdd=vdd
        )
        return metrics.spike_count

    @property
    def reference_count(self) -> int:
        """Calibration spike count at the nominal supply."""
        return self.spike_count(self.nominal_vdd)

    # -------------------------------------------------------------- detection
    def evaluate(self, vdd: float) -> DetectionOutcome:
        """Detector decision at one supply voltage."""
        reference = self.reference_count
        count = self.spike_count(vdd)
        deviation = 0.0 if reference == 0 else (count - reference) / reference
        return DetectionOutcome(
            vdd=vdd,
            spike_count=count,
            reference_count=reference,
            deviation=deviation,
            detected=abs(deviation) >= self.detection_threshold,
        )

    def sweep(self, vdd_values: Sequence[float]) -> List[DetectionOutcome]:
        """Detector decisions across a VDD sweep (paper Fig. 10c)."""
        return [self.evaluate(float(v)) for v in vdd_values]

    def detection_rate(self, vdd_values: Sequence[float]) -> float:
        """Fraction of swept (attacked) supplies that are flagged.

        Points at the nominal supply are excluded from the rate because they
        are not attacks.
        """
        outcomes = [
            outcome
            for outcome in self.sweep(vdd_values)
            if abs(outcome.vdd - self.nominal_vdd) > 1e-9
        ]
        if not outcomes:
            return 0.0
        return float(np.mean([outcome.detected for outcome in outcomes]))
